"""Service lifecycle: configuration, startup, and graceful shutdown.

:class:`ScenarioService` owns the three moving parts — the
:class:`~repro.service.jobs.JobStore`, the single
:class:`~repro.service.worker.Worker` thread, and the
:class:`~repro.service.http_api.ServiceHTTPServer` — and wires their
lifecycles together.  ``with ScenarioService(config) as service:`` is
the embedded form the tests and the executable docs use; ``repro
serve`` runs the same object in the foreground.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.parallel import read_sweep_points
from .http_api import ServiceHTTPServer
from .jobs import JobStore
from .journal import (
    JOURNAL_NAME,
    JobJournal,
    compact_journal,
    journal_path,
    recoverable_jobs,
)
from .planner import PlanError, plan_points, specs_from_dicts
from .worker import RetryPolicy, ServiceOverloadedError, Worker

__all__ = [
    "QUERYABLE_FIELDS",
    "ScenarioService",
    "ServiceConfig",
    "ServiceOverloadedError",
]

#: Row fields ``GET /results`` accepts as query filters.
QUERYABLE_FIELDS = ("protocol", "backend", "adversary", "n", "t", "ok", "rounds")


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a scenario service needs to start."""

    #: Bind host; keep the loopback default unless you front the service
    #: with something that does authentication.
    host: str = "127.0.0.1"
    #: Bind port; ``0`` asks the OS for a free one (tests, CI).
    port: int = 0
    #: Sweep cache directory (``None`` = the engine default, which
    #: honours ``$REPRO_SWEEP_CACHE``).
    cache_dir: Optional[str] = None
    #: Where finished jobs are persisted as sweep JSONL (``None``
    #: disables persistence; query endpoints then cover only the
    #: current process's jobs).
    data_dir: Optional[str] = None
    #: Process-pool width for point execution (1 = inline).
    pool_jobs: int = 1
    #: Disable the sweep cache entirely (no dedupe).
    no_cache: bool = False
    #: Folded into derived seeds of points submitted without one.
    base_seed: int = 0
    #: Admission limit: jobs allowed to wait in the worker's queue
    #: before submissions are shed with 429 (``0`` disables the check).
    max_queue_depth: int = 64
    #: Total attempts per point before it is quarantined as ``failed``.
    retry_max_attempts: int = 3
    #: Backoff before a point's second attempt (doubles per attempt,
    #: plus deterministic jitter — :class:`~repro.service.worker
    #: .RetryPolicy`).
    retry_base_delay: float = 0.05
    #: Point executor as a dotted ``module:function`` path (``None`` =
    #: the real one; the chaos harness swaps in a fault injector here).
    executor: Optional[str] = None
    #: Per-request socket deadline for HTTP handlers, in seconds — a
    #: stalled client (slow-loris, dead TCP peer) times out instead of
    #: pinning a handler thread forever.
    request_timeout: float = 30.0
    #: ``fsync`` the journal per record (survive machine crashes, not
    #: just process crashes, at a heavy per-append cost).
    journal_fsync: bool = False


class ScenarioService:
    """One running scenario server: store + worker + HTTP front end."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.base_seed = self.config.base_seed
        self._journal: Optional[JobJournal] = None
        if self.config.data_dir is not None:
            path = journal_path(self.config.data_dir)
            # Compact *before* reopening for append: terminal jobs'
            # records are dropped, non-terminal jobs' records survive,
            # so restore() below never needs to re-journal anything.
            compact_journal(path)
            self._journal = JobJournal(path, fsync=self.config.journal_fsync)
        self.store = JobStore(self._journal)
        self.worker = Worker(
            self.store,
            cache_dir=self.config.cache_dir,
            data_dir=self.config.data_dir,
            pool_jobs=self.config.pool_jobs,
            no_cache=self.config.no_cache,
            retry=RetryPolicy(
                max_attempts=self.config.retry_max_attempts,
                base_delay=self.config.retry_base_delay,
            ),
            executor=self.config.executor,
        )
        #: Job ids resumed from the journal by :meth:`start`, in
        #: submission order (``repro serve`` prints these).
        self.recovered_jobs: List[str] = []
        self._server: Optional[ServiceHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "ScenarioService":
        """Bind the socket and start the worker and serve threads.

        Recovery happens here, before the socket accepts submissions:
        every journaled job that never reached a terminal state is
        re-registered under its original id and re-queued.  Completed
        points dedupe through the sweep cache on re-run; journaled
        ``failed``/``cancelled`` points keep their verdicts.
        """
        self.recovered_jobs = self._recover()
        self._server = ServiceHTTPServer(
            (self.config.host, self.config.port), self
        )
        self.worker.start()
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            name="scenario-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def _recover(self) -> List[str]:
        """Restore + re-queue journaled non-terminal jobs; their ids."""
        if self.config.data_dir is None or self._journal is None:
            return []
        recovered = []
        for entry in recoverable_jobs(self._journal.path):
            try:
                specs = specs_from_dicts(entry.specs)
            except PlanError:
                # Schema drift: a journal from an incompatible spec
                # version cannot be replanned.  Journal the job as
                # failed so the next restart stops retrying it.
                self._journal.record_job(entry.job_id, "failed")
                continue
            job = self.store.restore(
                entry.job_id, specs, entry.point_states
            )
            self.worker.submit(job)
            recovered.append(job.job_id)
        return recovered

    def shutdown(self) -> None:
        """Graceful stop: finish nothing new, cancel the rest, unbind.

        Safe to call more than once (the ``POST /shutdown`` handler and
        a ``finally:`` block may race).  Blocks until the worker thread
        exited, so pending points are in a terminal state on return.
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.worker.stop()
        self.worker.join(timeout=30)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "ScenarioService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- introspection -------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` bindings)."""
        if self._server is None:
            raise RuntimeError("service is not started")
        return self._server.server_address[0], self._server.server_address[1]

    @property
    def url(self) -> str:
        """The service's base URL."""
        host, port = self.address
        return f"http://{host}:{port}"

    def check_capacity(self) -> None:
        """Raise :class:`ServiceOverloadedError` if the queue is full.

        Admission control happens before any planning: shedding load
        must be cheaper than accepting it, or overload makes itself
        worse.
        """
        limit = self.config.max_queue_depth
        if limit <= 0:
            return
        backlog = self.worker.backlog()
        if backlog >= limit:
            raise ServiceOverloadedError(backlog, limit)

    def submit(self, payload: Dict[str, Any]) -> str:
        """Plan and enqueue a job in-process (the HTTP-free path the
        executable docs use); returns the new job id.

        Raises :class:`ServiceOverloadedError` when the queue is at
        capacity — the same admission control ``POST /jobs`` applies.
        """
        self.check_capacity()
        specs = plan_points(payload, base_seed=self.base_seed)
        job = self.store.create(specs)
        self.worker.submit(job)
        return job.job_id

    def cancel_job(self, job_id: str) -> Optional[bool]:
        """Request cancellation of a job by id.

        Returns ``None`` for an unknown job, ``False`` if the job was
        already terminal, ``True`` when the cancel flag was set (the
        worker performs the actual transitions between points).
        """
        job = self.store.get(job_id)
        if job is None:
            return None
        return self.store.request_cancel(job)

    # -- result queries ------------------------------------------------

    def query_results(self, filters: Dict[str, str]) -> List[Dict[str, Any]]:
        """Accumulated result rows matching *filters*.

        Covers every in-memory job plus any sweep JSONL files persisted
        to the data directory by *earlier* service processes.  Filter
        values compare against the row field's JSON text, so ``ok=true``
        and ``n=7`` both do what they look like.  Unknown filter fields
        raise ``ValueError`` (the API layer's 400).
        """
        unknown = sorted(set(filters) - set(QUERYABLE_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown filter field(s) {unknown}; "
                f"queryable: {', '.join(QUERYABLE_FIELDS)}"
            )
        rows = []
        seen_jobs = set()
        for job in self.store.all_jobs():
            seen_jobs.add(f"{job.job_id}.jsonl")
            for index, row in self.store.row_snapshots(job):
                rows.append({"job_id": job.job_id, "index": index, **row})
        rows.extend(self._persisted_rows(skip=seen_jobs))
        return [row for row in rows if _matches(row, filters)]

    def _persisted_rows(self, skip: set) -> List[Dict[str, Any]]:
        """Point rows from data-dir JSONL written by earlier processes."""
        data_dir = self.config.data_dir
        if data_dir is None or not os.path.isdir(data_dir):
            return []
        rows = []
        for name in sorted(os.listdir(data_dir)):
            if (
                not name.endswith(".jsonl")
                or name in skip
                or name == JOURNAL_NAME
            ):
                continue
            for record in read_sweep_points(os.path.join(data_dir, name)):
                if record.get("row"):
                    rows.append(
                        {
                            "job_id": name[: -len(".jsonl")],
                            "index": record.get("index"),
                            **record["row"],
                        }
                    )
        return rows


def _matches(row: Dict[str, Any], filters: Dict[str, str]) -> bool:
    """True when every filter equals the row field's JSON text."""
    for field, wanted in filters.items():
        if field not in row:
            return False
        value = row[field]
        text = json.dumps(value) if not isinstance(value, str) else value
        if text != wanted:
            return False
    return True
