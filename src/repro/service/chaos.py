"""Chaos harness for the scenario service: inject faults, check invariants.

The resilience lab (:mod:`repro.resilience`) points fault injection at
*protocols*; this module points the same discipline at the service
*infrastructure*.  A chaos campaign generates seeded scenarios — one
:class:`random.Random` master seed drives every choice, exactly like
:class:`repro.resilience.campaign.CampaignConfig` — and each scenario
boots a real :class:`~repro.service.session.ScenarioService` over
throwaway directories, injects one failure mode, and judges the outcome
with the service's invariant suite, reporting breaches as the lab's
:class:`~repro.resilience.oracles.Violation` vocabulary.

Failure modes (``SCENARIO_KINDS``, round-robined so every campaign
covers all of them):

``transient``   one point raises once → retried → job ``done``
``poison``      one point raises every attempt → quarantined →
                ``done_with_errors`` with every other point completed
``kill-worker`` a pool process ``os._exit``\\ s under one point →
                ``BrokenProcessPool`` → pool rebuilt → job ``done``
``cancel``      slow points + ``cancel`` mid-grid → ``cancelled`` with
                consistent partial results
``restart``     service "crashes" mid-job (journal abandoned, no clean
                shutdown) → a second service over the same data dir
                recovers the job and finishes it, cache-deduped
``overload``    queue depth 1 + slow points → admission control sheds
                the third job while the first two still finish
``malformed``   an invalid payload is rejected without wedging the
                service (the next good job completes)

Invariants (:func:`check_service_invariants`): no submitted job is
lost, every job reaches a terminal state, no result row is lost for a
completed job, and no point index is double-counted in any persisted
JSONL file.

Fault injection rides the worker's executor indirection: the service is
started with ``executor="repro.service.chaos:chaos_execute"``, and
:func:`chaos_execute` consults a fault table in the
:data:`CHAOS_ENV` environment variable — environment, not arguments,
because the executor must cross a ``ProcessPoolExecutor`` boundary by
dotted name.  ``once`` faults arm through a sentinel file created with
``O_EXCL``, so exactly one attempt fires the fault even across process
kills and service restarts — which is precisely what lets the retry (or
the recovered service) succeed deterministically afterwards.

Run it directly (the CI ``service-chaos`` job does)::

    python -m repro.service.chaos --scenarios 14 --seed 7
"""

from __future__ import annotations

import argparse
import json
import os
import random
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..analysis.parallel import read_sweep_points
from ..analysis.spec import execute_spec_point
from ..resilience.oracles import Violation
from .journal import JOURNAL_NAME
from .jobs import TERMINAL_JOB_STATES, Job
from .planner import PlanError
from .session import ScenarioService, ServiceConfig
from .worker import ServiceOverloadedError

#: Environment variable carrying the JSON fault table.
CHAOS_ENV = "REPRO_SERVICE_CHAOS"

#: The dotted path services under test run as their executor.
CHAOS_EXECUTOR = "repro.service.chaos:chaos_execute"

#: Every failure mode, in round-robin order.
SCENARIO_KINDS = (
    "transient",
    "poison",
    "kill-worker",
    "cancel",
    "restart",
    "overload",
    "malformed",
)

#: Sleep injected into points that must be interruptible (cancel,
#: overload): long enough that the control action races nothing.
SLOW_DELAY = 0.25

#: Sleep injected into the point a "crashing" service abandons: long
#: enough that the abandoned worker thread stays parked until the whole
#: campaign process exits (daemon threads die with it).
HANG_DELAY = 600.0


class ChaosFault(RuntimeError):
    """The injected failure raised by ``raise``-kind faults."""


# -- the injected executor ---------------------------------------------


def chaos_execute(spec: Any) -> Dict[str, Any]:
    """Execute one point, first applying any armed fault for its seed.

    A drop-in for :func:`repro.analysis.spec.execute_spec_point`
    (module-level, picklable by dotted name) that reads the fault table
    from :data:`CHAOS_ENV`.  With no table armed it is a pass-through.
    """
    raw = os.environ.get(CHAOS_ENV)
    if raw:
        table = json.loads(raw)
        fault = table.get("faults", {}).get(str(spec.seed))
        if fault is not None and _claim_fault(table, fault, spec.seed):
            kind = fault.get("kind")
            if kind == "slow":
                time.sleep(float(fault.get("delay", SLOW_DELAY)))
            elif kind == "raise":
                raise ChaosFault(f"injected fault for seed {spec.seed}")
            elif kind == "kill":
                # A worker-process death: in pool mode this breaks the
                # ProcessPoolExecutor; in inline mode it is the service
                # crash the journal exists for.
                os._exit(17)
    return execute_spec_point(spec)


def _claim_fault(
    table: Dict[str, Any], fault: Dict[str, Any], seed: int
) -> bool:
    """Whether this attempt fires the fault (``once`` uses a sentinel).

    The sentinel is created with ``O_EXCL`` *before* the fault fires,
    so at most one attempt — across retries, pool rebuilds, and service
    restarts — ever sees it, and every later attempt runs clean.
    """
    if not fault.get("once", True):
        return True
    sentinel_dir = table.get("sentinel_dir")
    if not sentinel_dir:
        return True
    os.makedirs(sentinel_dir, exist_ok=True)
    sentinel = os.path.join(sentinel_dir, f"fault-{seed}")
    try:
        handle = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(handle)
    return True


@contextmanager
def armed_faults(
    faults: Dict[int, Dict[str, Any]], sentinel_dir: str
) -> Iterator[None]:
    """Arm a fault table (keyed by point seed) for the enclosed block."""
    table = {
        "sentinel_dir": sentinel_dir,
        "faults": {str(seed): fault for seed, fault in faults.items()},
    }
    previous = os.environ.get(CHAOS_ENV)
    os.environ[CHAOS_ENV] = json.dumps(table, sort_keys=True)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = previous


# -- scenario generation -----------------------------------------------


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded chaos scenario: which failure mode, over which grid."""

    index: int
    kind: str
    seed: int
    #: Grid size (faults pick a victim point among these).
    n_points: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON form for campaign reports."""
        return {
            "index": self.index,
            "kind": self.kind,
            "seed": self.seed,
            "n_points": self.n_points,
        }


@dataclass(frozen=True)
class ChaosConfig:
    """A chaos campaign: how many scenarios from which master seed."""

    scenarios: int = 50
    seed: int = 0
    kinds: Tuple[str, ...] = SCENARIO_KINDS

    def generate(self) -> List[ChaosScenario]:
        """The campaign's scenarios — one master RNG, fully derived.

        Kinds round-robin (every campaign of ``>= len(kinds)`` scenarios
        covers every failure mode); sizes and per-scenario seeds come
        from the master RNG, so two campaigns with the same config are
        bit-identical — the resilience lab's reproducibility discipline.
        """
        rng = random.Random(self.seed)
        return [
            ChaosScenario(
                index=index,
                kind=self.kinds[index % len(self.kinds)],
                seed=rng.randrange(2**31),
                n_points=rng.randint(3, 5),
            )
            for index in range(self.scenarios)
        ]


@dataclass
class ChaosReport:
    """Campaign outcome: scenarios run and the violations they found."""

    scenarios: int = 0
    violations: List[Tuple[ChaosScenario, Violation]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        """True when every scenario upheld every invariant."""
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (the ``--json`` CLI output)."""
        return {
            "scenarios": self.scenarios,
            "ok": self.ok,
            "violations": [
                {"scenario": scenario.to_dict(), **violation.to_dict()}
                for scenario, violation in self.violations
            ],
        }

    def summary(self) -> str:
        """One status line for logs."""
        verdict = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"chaos campaign: {self.scenarios} scenarios, {verdict}"


# -- invariants --------------------------------------------------------


def check_service_invariants(
    service: ScenarioService, job_ids: List[str]
) -> List[Violation]:
    """The service-level invariant suite over *job_ids*.

    * ``job-lost`` — a submitted job id the store no longer knows;
    * ``non-terminal`` — a job that never reached a terminal state;
    * ``row-lost`` — a completed (non-failed, non-cancelled) point of a
      terminal job without its result row in the persisted JSONL;
    * ``row-duplicated`` — a point index appearing twice in one
      persisted JSONL file (double-counted work).
    """
    violations: List[Violation] = []
    for job_id in job_ids:
        job = service.store.get(job_id)
        if job is None:
            violations.append(
                Violation("job-lost", f"{job_id} vanished from the store")
            )
            continue
        state = service.store.job_status(job)
        if state not in TERMINAL_JOB_STATES:
            violations.append(
                Violation(
                    "non-terminal", f"{job_id} ended the scenario {state!r}"
                )
            )
        violations.extend(_check_rows(service, job, state))
    violations.extend(_check_duplicates(service))
    return violations


def _check_rows(
    service: ScenarioService, job: Job, state: str
) -> List[Violation]:
    """Completed points of a finished job must have persisted rows."""
    if state not in ("done", "done_with_errors"):
        return []
    data_dir = service.config.data_dir
    if data_dir is None:
        return []
    path = os.path.join(data_dir, f"{job.job_id}.jsonl")
    persisted = {
        record.get("index"): record.get("row")
        for record in read_sweep_points(path)
    }
    violations: List[Violation] = []
    for record in service.store.point_records(job):
        if record["status"] not in ("done", "cached"):
            continue
        if not persisted.get(record["index"]):
            violations.append(
                Violation(
                    "row-lost",
                    f"{job.job_id} point {record['index']} is "
                    f"{record['status']} but has no persisted row",
                )
            )
    return violations


def _check_duplicates(service: ScenarioService) -> List[Violation]:
    """No persisted JSONL file may count the same point index twice."""
    data_dir = service.config.data_dir
    if data_dir is None or not os.path.isdir(data_dir):
        return []
    violations: List[Violation] = []
    for name in sorted(os.listdir(data_dir)):
        if not name.endswith(".jsonl") or name == JOURNAL_NAME:
            continue
        seen: Dict[Any, int] = {}
        for record in read_sweep_points(os.path.join(data_dir, name)):
            index = record.get("index")
            seen[index] = seen.get(index, 0) + 1
        for index, count in sorted(seen.items()):
            if count > 1:
                violations.append(
                    Violation(
                        "row-duplicated",
                        f"{name} counts point {index} {count} times",
                    )
                )
    return violations


# -- scenario execution ------------------------------------------------


def _point(seed: int) -> Dict[str, Any]:
    """One small, fast spec dict; the seed keys the fault table."""
    return {
        "protocol": "real-aa",
        "n": 3,
        "t": 0,
        "known_range": 8.0,
        "adversary": "none",
        "seed": seed,
    }


def _payload(scenario: ChaosScenario) -> Dict[str, Any]:
    """The scenario's grid: ``n_points`` specs with derived seeds."""
    return {
        "points": [
            _point(scenario.seed * 1000 + offset)
            for offset in range(scenario.n_points)
        ]
    }


def _config(workdir: str, **overrides: Any) -> ServiceConfig:
    """A service config over throwaway directories under *workdir*."""
    settings: Dict[str, Any] = dict(
        port=0,
        cache_dir=os.path.join(workdir, "cache"),
        data_dir=os.path.join(workdir, "data"),
        executor=CHAOS_EXECUTOR,
        retry_base_delay=0.01,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


def _wait_terminal(
    service: ScenarioService, job_id: str, timeout: float = 30.0
) -> str:
    """Poll the store until *job_id* is terminal; returns the state."""
    deadline = time.monotonic() + timeout
    while True:
        job = service.store.get(job_id)
        state = service.store.job_status(job) if job is not None else "lost"
        if state in TERMINAL_JOB_STATES or state == "lost":
            return state
        if time.monotonic() >= deadline:
            return state
        time.sleep(0.02)


def _wait_dequeued(
    service: ScenarioService, job_id: str, timeout: float = 10.0
) -> None:
    """Wait until the worker picked *job_id* up (it left the queue)."""
    deadline = time.monotonic() + timeout
    job = service.store.get(job_id)
    while (
        job is not None
        and service.store.job_status(job) == "queued"
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)


def _event_kinds(service: ScenarioService, job_id: str) -> List[str]:
    """The job's event names, in order (empty for unknown jobs)."""
    job = service.store.get(job_id)
    if job is None:
        return []
    return [entry["event"] for entry in service.store.events_since(job, 0)]


def _expect(condition: bool, detail: str) -> List[Violation]:
    """A scenario-specific expectation, as zero or one violation."""
    if condition:
        return []
    return [Violation("expectation", detail)]


def run_chaos_scenario(
    scenario: ChaosScenario, workdir: str
) -> List[Violation]:
    """Run one scenario in isolated directories; returns its violations."""
    runner = _RUNNERS[scenario.kind]
    return runner(scenario, workdir)


def _run_transient(scenario: ChaosScenario, workdir: str) -> List[Violation]:
    """One point fails once; the retry must absorb it silently."""
    payload = _payload(scenario)
    rng = random.Random(scenario.seed)
    victim = payload["points"][rng.randrange(scenario.n_points)]["seed"]
    faults = {victim: {"kind": "raise", "once": True}}
    with armed_faults(faults, os.path.join(workdir, "sentinels")):
        with ScenarioService(_config(workdir)) as service:
            job_id = service.submit(payload)
            state = _wait_terminal(service, job_id)
            violations = _expect(
                state == "done",
                f"transient fault must retry to done, got {state!r}",
            )
            violations += _expect(
                "point_retry" in _event_kinds(service, job_id),
                "no point_retry event after a transient fault",
            )
            return violations + check_service_invariants(service, [job_id])


def _run_poison(scenario: ChaosScenario, workdir: str) -> List[Violation]:
    """One point fails every attempt; the job must finish around it."""
    payload = _payload(scenario)
    rng = random.Random(scenario.seed)
    victim = payload["points"][rng.randrange(scenario.n_points)]["seed"]
    faults = {victim: {"kind": "raise", "once": False}}
    with armed_faults(faults, os.path.join(workdir, "sentinels")):
        with ScenarioService(_config(workdir)) as service:
            job_id = service.submit(payload)
            state = _wait_terminal(service, job_id)
            violations = _expect(
                state == "done_with_errors",
                f"poisoned point must yield done_with_errors, got {state!r}",
            )
            violations += _expect(
                "point_failed" in _event_kinds(service, job_id),
                "no point_failed event for a quarantined point",
            )
            job = service.store.get(job_id)
            if job is not None:
                counts = service.store.counts(job)
                violations += _expect(
                    counts["failed"] == 1
                    and counts["done"] + counts["cached"]
                    == scenario.n_points - 1,
                    f"exactly one quarantined point expected, got {counts}",
                )
            return violations + check_service_invariants(service, [job_id])


def _run_kill_worker(scenario: ChaosScenario, workdir: str) -> List[Violation]:
    """A pool process dies mid-point; the pool must rebuild and finish."""
    payload = _payload(scenario)
    rng = random.Random(scenario.seed)
    victim = payload["points"][rng.randrange(scenario.n_points)]["seed"]
    faults = {victim: {"kind": "kill", "once": True}}
    with armed_faults(faults, os.path.join(workdir, "sentinels")):
        with ScenarioService(_config(workdir, pool_jobs=2)) as service:
            job_id = service.submit(payload)
            state = _wait_terminal(service, job_id, timeout=60.0)
            violations = _expect(
                state == "done",
                f"killed pool process must heal to done, got {state!r}",
            )
            violations += _expect(
                "pool_rebuilt" in _event_kinds(service, job_id),
                "no pool_rebuilt event after a worker-process kill",
            )
            return violations + check_service_invariants(service, [job_id])


def _run_cancel(scenario: ChaosScenario, workdir: str) -> List[Violation]:
    """Cancel mid-grid: the job stops between points, consistently."""
    payload = _payload(scenario)
    faults = {
        point["seed"]: {"kind": "slow", "once": False, "delay": SLOW_DELAY}
        for point in payload["points"]
    }
    with armed_faults(faults, os.path.join(workdir, "sentinels")):
        with ScenarioService(_config(workdir)) as service:
            job_id = service.submit(payload)
            _wait_dequeued(service, job_id)
            cancelled = service.cancel_job(job_id)
            state = _wait_terminal(service, job_id)
            violations = _expect(
                cancelled is not False,
                "cancel_job refused a job that was not terminal",
            )
            violations += _expect(
                state in ("cancelled", "done"),
                f"cancelled job ended {state!r}",
            )
            return violations + check_service_invariants(service, [job_id])


def _run_restart(scenario: ChaosScenario, workdir: str) -> List[Violation]:
    """Crash mid-job; a second service over the data dir must recover."""
    payload = _payload(scenario)
    hang_seed = payload["points"][-1]["seed"]
    faults = {hang_seed: {"kind": "slow", "once": True, "delay": HANG_DELAY}}
    with armed_faults(faults, os.path.join(workdir, "sentinels")):
        first = ScenarioService(_config(workdir)).start()
        job_id = first.submit(payload)
        deadline = time.monotonic() + 15.0
        job = first.store.get(job_id)
        while time.monotonic() < deadline:
            counts = first.store.counts(job) if job is not None else {}
            if counts.get("done", 0) + counts.get("cached", 0) >= (
                scenario.n_points - 1
            ):
                break
            time.sleep(0.02)
        simulate_crash(first)
        second = ScenarioService(_config(workdir))
        with second:
            violations = _expect(
                job_id in second.recovered_jobs,
                f"{job_id} was not recovered from the journal "
                f"(recovered: {second.recovered_jobs})",
            )
            state = _wait_terminal(second, job_id)
            violations += _expect(
                state == "done",
                f"recovered job must finish done, got {state!r}",
            )
            violations += _expect(
                "job_recovered" in _event_kinds(second, job_id),
                "no job_recovered event on the restarted service",
            )
            recovered = second.store.get(job_id)
            if recovered is not None:
                counts = second.store.counts(recovered)
                violations += _expect(
                    counts.get("cached", 0) >= scenario.n_points - 1,
                    f"recovery must dedupe finished points through the "
                    f"cache, got {counts}",
                )
            return violations + check_service_invariants(second, [job_id])


def simulate_crash(service: ScenarioService) -> None:
    """Leave *service* the way ``kill -9`` would.

    No cancel transitions, no terminal journal records, no graceful
    drain: the journal handle is closed (further appends are dropped,
    like a dead process's would be) and the listening socket goes cold.
    The worker thread is deliberately *not* stopped — it is a daemon
    parked inside an injected hang, and a real crash would not have
    unwound it either.
    """
    if service._journal is not None:
        service._journal.close()
    if service._server is not None:
        service._server.shutdown()
        service._server.server_close()


def _run_overload(scenario: ChaosScenario, workdir: str) -> List[Violation]:
    """Admission control: the queue sheds load, accepted work finishes."""
    payload = _payload(scenario)
    faults = {
        point["seed"]: {"kind": "slow", "once": True, "delay": SLOW_DELAY}
        for point in payload["points"]
    }
    with armed_faults(faults, os.path.join(workdir, "sentinels")):
        config = _config(workdir, max_queue_depth=1)
        with ScenarioService(config) as service:
            first = service.submit(payload)
            _wait_dequeued(service, first)
            second = service.submit(payload)
            shed = False
            try:
                service.submit(payload)
            except ServiceOverloadedError as exc:
                shed = exc.retry_after >= 1
            violations = _expect(
                shed, "third submission was not shed with a retry hint"
            )
            states = [
                _wait_terminal(service, job_id) for job_id in (first, second)
            ]
            violations += _expect(
                all(state == "done" for state in states),
                f"accepted jobs must finish despite shedding, got {states}",
            )
            return violations + check_service_invariants(
                service, [first, second]
            )


def _run_malformed(scenario: ChaosScenario, workdir: str) -> List[Violation]:
    """A bad payload is rejected cleanly; the next good job runs."""
    with armed_faults({}, os.path.join(workdir, "sentinels")):
        with ScenarioService(_config(workdir)) as service:
            rejected = False
            try:
                service.submit(
                    {"points": [{"protocol": "no-such-protocol", "n": 3, "t": 0}]}
                )
            except PlanError:
                rejected = True
            violations = _expect(
                rejected, "malformed payload was accepted by the planner"
            )
            violations += _expect(
                not service.store.all_jobs(),
                "a malformed payload must not register a job",
            )
            job_id = service.submit(_payload(scenario))
            state = _wait_terminal(service, job_id)
            violations += _expect(
                state == "done",
                f"good job after a malformed one ended {state!r}",
            )
            return violations + check_service_invariants(service, [job_id])


_RUNNERS = {
    "transient": _run_transient,
    "poison": _run_poison,
    "kill-worker": _run_kill_worker,
    "cancel": _run_cancel,
    "restart": _run_restart,
    "overload": _run_overload,
    "malformed": _run_malformed,
}


def run_chaos_campaign(
    config: ChaosConfig, workdir: Optional[str] = None
) -> ChaosReport:
    """Run the campaign's scenarios sequentially; collect violations."""
    report = ChaosReport()
    base = workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    for scenario in config.generate():
        scenario_dir = os.path.join(
            base, f"scenario-{scenario.index:03d}-{scenario.kind}"
        )
        os.makedirs(scenario_dir, exist_ok=True)
        for violation in run_chaos_scenario(scenario, scenario_dir):
            report.violations.append((scenario, violation))
        report.scenarios += 1
    return report


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (``python -m repro.service.chaos``)."""
    parser = argparse.ArgumentParser(
        description="chaos-test the scenario service's fault tolerance"
    )
    parser.add_argument(
        "--scenarios", type=int, default=50, help="scenario count"
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    report = run_chaos_campaign(
        ChaosConfig(scenarios=args.scenarios, seed=args.seed)
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
        for scenario, violation in report.violations:
            print(
                f"  scenario {scenario.index} ({scenario.kind}, "
                f"seed {scenario.seed}): {violation.oracle}: "
                f"{violation.detail}"
            )
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
