"""A stdlib HTTP client for the scenario service.

:class:`ServiceClient` is what ``repro submit`` / ``repro status`` use
and what tests drive: thin ``urllib`` wrappers over the endpoints in
:mod:`repro.service.http_api`, plus :meth:`ServiceClient.wait` for
polling a job to a terminal state.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional


class ServiceClientError(RuntimeError):
    """An HTTP error from the service, with its status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to one scenario service at *base_url*."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> bytes:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body).get("error", body.decode())
            except ValueError:
                message = body.decode(errors="replace")
            raise ServiceClientError(exc.code, message) from None

    def _json(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        return json.loads(self._request(method, path, payload))

    def _ndjson(self, path: str) -> List[Dict[str, Any]]:
        body = self._request("GET", path).decode()
        return [json.loads(line) for line in body.splitlines() if line.strip()]

    # -- endpoints -----------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """``GET /`` — service info."""
        return self._json("GET", "/")

    def healthy(self) -> bool:
        """``GET /healthz`` — liveness."""
        try:
            return bool(self._json("GET", "/healthz").get("ok"))
        except (ServiceClientError, OSError):
            return False

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs`` — submit a grid; returns the 202 body."""
        return self._json("POST", "/jobs", payload)

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /jobs`` — every job's id, status, and counts."""
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — full job status."""
        return self._json("GET", f"/jobs/{job_id}")

    def events(self, job_id: str, since: int = 0) -> List[Dict[str, Any]]:
        """``GET /jobs/<id>/events?since=N`` — the NDJSON event tail."""
        return self._ndjson(f"/jobs/{job_id}/events?since={since}")

    def results(self, job_id: str) -> List[Dict[str, Any]]:
        """``GET /jobs/<id>/results`` — per-point params/seed/row records."""
        return self._ndjson(f"/jobs/{job_id}/results")

    def trace(self, job_id: str, index: int) -> str:
        """``GET /jobs/<id>/points/<i>/trace`` — run-trace JSONL."""
        return self._request("GET", f"/jobs/{job_id}/points/{index}/trace").decode()

    def report(self, job_id: str, index: int) -> str:
        """``GET /jobs/<id>/points/<i>/report`` — rendered text report."""
        return self._request("GET", f"/jobs/{job_id}/points/{index}/report").decode()

    def diff(self, job_id: str, a: int, b: int) -> Dict[str, Any]:
        """``GET /jobs/<id>/diff?a=I&b=J`` — diff two recorded points."""
        return self._json("GET", f"/jobs/{job_id}/diff?a={a}&b={b}")

    def query(self, **filters: str) -> List[Dict[str, Any]]:
        """``GET /results?...`` — accumulated rows matching *filters*."""
        suffix = "&".join(f"{key}={value}" for key, value in filters.items())
        return self._ndjson(f"/results?{suffix}" if suffix else "/results")

    def shutdown(self) -> None:
        """``POST /shutdown`` — ask the service to stop gracefully."""
        self._json("POST", "/shutdown", {})

    def wait(
        self, job_id: str, timeout: float = 60.0, interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal state.

        Returns the final status body; raises ``TimeoutError`` if the
        job is still running after *timeout* seconds.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] in ("done", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{job_id} still {status['status']!r} after {timeout}s"
                )
            time.sleep(interval)
