"""A stdlib HTTP client for the scenario service.

:class:`ServiceClient` is what ``repro submit`` / ``repro status`` use
and what tests drive: thin ``urllib`` wrappers over the endpoints in
:mod:`repro.service.http_api`, plus :meth:`ServiceClient.wait` for
polling a job to a terminal state.

Robustness is opt-in: constructed with ``retries > 0``, the client
retransmits requests that failed with a connection error, a 5xx, or a
429 — with jittered exponential backoff, honouring a ``Retry-After``
header when the service sent one.  Retransmission is safe for every
endpoint here: the GETs are read-only, ``POST /jobs/<id>/cancel`` and
``POST /shutdown`` are idempotent, and a duplicated ``POST /jobs``
creates a job whose points carry the same deterministic seeds — the
sweep cache serves the repeats, so a retry costs a job id, not
recomputation.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, List, Optional

#: Job states after which :meth:`ServiceClient.wait` stops polling.
TERMINAL_STATES = ("done", "done_with_errors", "failed", "cancelled")


class ServiceClientError(RuntimeError):
    """An HTTP error from the service, with its status and message."""

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        #: Alias of :attr:`status` (named like ``HTTPError.code``);
        #: in-package code reads this one — ``status`` is a
        #: lock-guarded attribute name under the PL101 discipline, and
        #: exception objects are thread-local.
        self.code = status
        #: Parsed ``Retry-After`` header (seconds), when the service
        #: sent one (429 responses do).
        self.retry_after = retry_after


class ServiceClient:
    """Talk to one scenario service at *base_url*.

    *retries* enables retransmission of failed requests (``0`` — the
    default — preserves fail-fast behaviour); *backoff* is the base
    delay, doubled per attempt with deterministic jitter.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        retries: int = 0,
        backoff: float = 0.1,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff

    # -- plumbing ------------------------------------------------------

    def _request_once(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> bytes:
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body).get("error", body.decode())
            except ValueError:
                message = body.decode(errors="replace")
            raise ServiceClientError(
                exc.code, message, retry_after=_retry_after(exc)
            ) from None

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> bytes:
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request_once(method, path, payload)
            except ServiceClientError as exc:
                # 4xx other than 429 is the caller's bug; retrying
                # cannot fix it and would only hide it.
                if exc.code != 429 and exc.code < 500:
                    raise
                if attempt > self.retries:
                    raise
                delay = exc.retry_after
            except (urllib.error.URLError, OSError, ConnectionError):
                if attempt > self.retries:
                    raise
                delay = None
            time.sleep(delay if delay is not None else self._delay(path, attempt))

    def _delay(self, path: str, attempt: int) -> float:
        """Jittered exponential backoff, deterministic per (path, attempt)."""
        base = min(5.0, self.backoff * (2 ** (attempt - 1)))
        digest = hashlib.sha256(f"{path}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2**64)
        return base * (1.0 + 0.5 * unit)

    def _json(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        return json.loads(self._request(method, path, payload))

    def _ndjson(self, path: str) -> List[Dict[str, Any]]:
        body = self._request("GET", path).decode()
        return [json.loads(line) for line in body.splitlines() if line.strip()]

    # -- endpoints -----------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """``GET /`` — service info."""
        return self._json("GET", "/")

    def healthy(self) -> bool:
        """``GET /healthz`` — liveness."""
        try:
            return bool(self._json("GET", "/healthz").get("ok"))
        except (ServiceClientError, OSError):
            return False

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs`` — submit a grid; returns the 202 body."""
        return self._json("POST", "/jobs", payload)

    def jobs(self) -> List[Dict[str, Any]]:
        """``GET /jobs`` — every job's id, status, and counts."""
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>`` — full job status."""
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``POST /jobs/<id>/cancel`` — request cancellation.

        Returns the 202 body; raises :class:`ServiceClientError` with
        status 409 when the job is already terminal.
        """
        return self._json("POST", f"/jobs/{job_id}/cancel", {})

    def events(self, job_id: str, since: int = 0) -> List[Dict[str, Any]]:
        """``GET /jobs/<id>/events?since=N`` — the NDJSON event tail."""
        return self._ndjson(f"/jobs/{job_id}/events?since={since}")

    def results(self, job_id: str) -> List[Dict[str, Any]]:
        """``GET /jobs/<id>/results`` — per-point params/seed/row records."""
        return self._ndjson(f"/jobs/{job_id}/results")

    def trace(self, job_id: str, index: int) -> str:
        """``GET /jobs/<id>/points/<i>/trace`` — run-trace JSONL."""
        return self._request("GET", f"/jobs/{job_id}/points/{index}/trace").decode()

    def report(self, job_id: str, index: int) -> str:
        """``GET /jobs/<id>/points/<i>/report`` — rendered text report."""
        return self._request("GET", f"/jobs/{job_id}/points/{index}/report").decode()

    def diff(self, job_id: str, a: int, b: int) -> Dict[str, Any]:
        """``GET /jobs/<id>/diff?a=I&b=J`` — diff two recorded points."""
        query = urllib.parse.urlencode({"a": a, "b": b})
        return self._json("GET", f"/jobs/{job_id}/diff?{query}")

    def query(self, **filters: str) -> List[Dict[str, Any]]:
        """``GET /results?...`` — accumulated rows matching *filters*.

        Filter values are URL-encoded, so values containing ``&``,
        ``=``, spaces, or non-ASCII text arrive at the service intact.
        """
        suffix = urllib.parse.urlencode(filters)
        return self._ndjson(f"/results?{suffix}" if suffix else "/results")

    def shutdown(self) -> None:
        """``POST /shutdown`` — ask the service to stop gracefully."""
        self._json("POST", "/shutdown", {})

    def wait(
        self, job_id: str, timeout: float = 60.0, interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal state.

        Returns the final status body; raises ``TimeoutError`` (carrying
        the last observed status) once *timeout* elapsed.  The deadline
        is checked *before* sleeping, so an already-expired budget never
        buys one more sleep+poll round; a 429 from the poll itself backs
        off by its ``Retry-After`` (capped by the remaining budget).
        """
        deadline = time.monotonic() + timeout
        last_status = "unknown"
        while True:
            try:
                status = self.job(job_id)
            except ServiceClientError as exc:
                if exc.code != 429:
                    raise
                pause: float = exc.retry_after or interval
            else:
                last_status = status["status"]
                if last_status in TERMINAL_STATES:
                    return status
                pause = interval
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"{job_id} still {last_status!r} after {timeout}s"
                )
            time.sleep(min(pause, remaining))


def _retry_after(exc: urllib.error.HTTPError) -> Optional[float]:
    """The ``Retry-After`` header of an error response, in seconds."""
    value = exc.headers.get("Retry-After") if exc.headers else None
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None
