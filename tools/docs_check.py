#!/usr/bin/env python3
"""Docs-consistency gate: docstring coverage + executable documentation.

Two checks, both run by CI's ``docs`` job (and runnable locally):

1. **Docstring coverage** — every module, public class, and public
   module-level function under ``src/repro/`` must carry a docstring.
   "Public" means the name does not start with ``_``.  Methods are
   exempt: the protocol-party and adversary interfaces (``duration`` /
   ``messages_for_round`` / ``receive_round``, ``on_round``,
   ``byzantine_messages`` / ``transform_outbox``, …) are documented once
   on their base class, and re-documenting each trivial override would
   only drown the docstrings that matter.

2. **Executable documentation** — every fenced ````` ```python ````` block
   in README.md and the docs/ pages listed in ``EXECUTED_DOCS`` is
   executed (with ``src/`` on ``sys.path`` and the sweep cache redirected
   to a throwaway directory), so the documented quickstarts can never
   silently rot.

Exit status is non-zero on any failure, with one line per offence.

Run:  python tools/docs_check.py
"""

import ast
import os
import re
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
PACKAGE_ROOT = os.path.join(SRC, "repro")
EXECUTED_DOCS = [
    "README.md",
    os.path.join("docs", "ARCHITECTURE.md"),
    os.path.join("docs", "OBSERVABILITY.md"),
    os.path.join("docs", "SERVICE.md"),
    os.path.join("docs", "STATIC_ANALYSIS.md"),
    os.path.join("docs", "RESILIENCE.md"),
    os.path.join("docs", "FLYWHEEL.md"),
]

sys.path.insert(0, SRC)

# The same deterministic source-tree walk the protocol-invariant linter
# uses, so the two gates can never disagree about which files exist.
from repro.statics.discovery import iter_source_files  # noqa: E402


# ----------------------------------------------------------------------
# Check 1: docstring coverage
# ----------------------------------------------------------------------


def is_public(name):
    return not name.startswith("_")


def missing_docstrings(path):
    """Yield ``(lineno, description)`` for every undocumented public item."""
    with open(path) as handle:
        tree = ast.parse(handle.read(), filename=path)
    if ast.get_docstring(tree) is None:
        yield 1, "module docstring missing"

    for child in ast.iter_child_nodes(tree):
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if is_public(child.name) and ast.get_docstring(child) is None:
                kind = "class" if isinstance(child, ast.ClassDef) else "function"
                yield child.lineno, f"{kind} `{child.name}` has no docstring"


def check_docstrings():
    failures = []
    checked = 0
    for path in iter_source_files(PACKAGE_ROOT):
        checked += 1
        rel = os.path.relpath(path, REPO)
        for lineno, description in missing_docstrings(path):
            failures.append(f"{rel}:{lineno}: {description}")
    print(f"docstring coverage: {checked} files checked", flush=True)
    return failures


# ----------------------------------------------------------------------
# Check 2: executable documentation
# ----------------------------------------------------------------------

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(path):
    with open(path) as handle:
        text = handle.read()
    for match in FENCE.finditer(text):
        lineno = text[: match.start()].count("\n") + 1
        yield lineno, match.group(1)


def run_doc_blocks():
    failures = []
    executed = 0
    with tempfile.TemporaryDirectory() as tmpdir:
        os.environ["REPRO_SWEEP_CACHE"] = os.path.join(tmpdir, "cache")
        for doc in EXECUTED_DOCS:
            path = os.path.join(REPO, doc)
            for lineno, block in python_blocks(path):
                executed += 1
                try:
                    code = compile(block, f"{doc}:{lineno}", "exec")
                    exec(code, {"__name__": "__docs__"})
                except Exception as exc:  # noqa: BLE001 - report, don't crash
                    failures.append(
                        f"{doc}:{lineno}: block raised "
                        f"{type(exc).__name__}: {exc}"
                    )
    print(f"executable docs: {executed} python blocks executed", flush=True)
    return failures


def main():
    failures = check_docstrings() + run_doc_blocks()
    for failure in failures:
        print(failure)
    if failures:
        print(f"\ndocs check FAILED: {len(failures)} problem(s)")
        return 1
    print("docs check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
