#!/usr/bin/env python
"""Standalone entry point for the protocol-invariant linter.

This is the front end CI runs (``python tools/protolint.py --json``); it
is a thin shim over :mod:`repro.statics.cli`, the same engine behind the
``repro lint`` subcommand.  Exit codes: 0 clean, 1 findings, 2 usage
error.  See docs/STATIC_ANALYSIS.md for the rule catalog.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.statics.cli import run  # noqa: E402


if __name__ == "__main__":
    sys.exit(run(prog="protolint"))
