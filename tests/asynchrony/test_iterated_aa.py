"""Tests for asynchronous iterated AA (witness technique) on ℝ and trees."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import tree_agreement, tree_validity
from repro.asynchrony import (
    AsyncLiarAdversary,
    AsyncNoiseAdversary,
    AsyncPassiveAdversary,
    AsyncRealAAParty,
    AsyncSilentAdversary,
    AsyncTreeAAParty,
    DelaySendersScheduler,
    FIFOScheduler,
    RandomScheduler,
    SplitScheduler,
    run_async_protocol,
)
from repro.trees import figure_tree, path_tree, random_tree, star_tree

from ..strategies import trees_with_vertex_choices


def run_real(inputs, t, epsilon=0.5, adversary=None, scheduler=None, **kwargs):
    n = len(inputs)
    known = max(inputs) - min(inputs) if "iterations" not in kwargs else None
    return run_async_protocol(
        n,
        t,
        lambda pid: AsyncRealAAParty(
            pid, n, t, inputs[pid], epsilon=epsilon, known_range=known, **kwargs
        ),
        adversary=adversary,
        scheduler=scheduler,
        max_steps=400_000,
    )


def run_tree(tree, inputs, t, adversary=None, scheduler=None):
    n = len(inputs)
    return run_async_protocol(
        n,
        t,
        lambda pid: AsyncTreeAAParty(pid, n, t, tree, inputs[pid]),
        adversary=adversary,
        scheduler=scheduler,
        max_steps=400_000,
    )


class TestConstruction:
    def test_resilience(self):
        with pytest.raises(ValueError):
            AsyncRealAAParty(0, 6, 2, 0.0, iterations=2)

    def test_real_input_validated(self):
        with pytest.raises(ValueError):
            AsyncRealAAParty(0, 4, 1, float("inf"), iterations=1)

    def test_tree_input_validated(self):
        with pytest.raises(KeyError):
            AsyncTreeAAParty(0, 4, 1, figure_tree(), "zzz")

    def test_needs_budget_spec(self):
        with pytest.raises(ValueError):
            AsyncRealAAParty(0, 4, 1, 0.0)


class TestAsyncRealAA:
    INPUTS = [0.0, 10.0, 2.0, 8.0, 5.0, 0.0, 10.0]

    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            lambda: FIFOScheduler(),
            lambda: RandomScheduler(4),
            lambda: DelaySendersScheduler([0, 1]),
            lambda: SplitScheduler([0, 1, 2]),
        ],
    )
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: AsyncSilentAdversary(),
            lambda: AsyncPassiveAdversary(),
            lambda: AsyncNoiseAdversary(seed=6),
        ],
    )
    def test_aa_properties(self, scheduler_factory, adversary_factory):
        result = run_real(
            self.INPUTS,
            t=2,
            adversary=adversary_factory(),
            scheduler=scheduler_factory(),
        )
        assert result.completed
        values = list(result.honest_outputs.values())
        honest_inputs = [self.INPUTS[p] for p in sorted(result.honest)]
        assert min(honest_inputs) <= min(values) <= max(values) <= max(honest_inputs)
        assert max(values) - min(values) <= 0.5

    def test_liar_within_range_tolerated(self):
        n, t = 7, 2
        liar = AsyncLiarAdversary(
            lambda pid: AsyncRealAAParty(pid, n, t, 123.0, iterations=6)
        )
        result = run_real(self.INPUTS, t=2, adversary=liar, iterations=6)
        values = list(result.honest_outputs.values())
        assert all(0.0 <= v <= 10.0 for v in values)

    def test_iteration_records(self):
        result = run_real(self.INPUTS, t=2, adversary=AsyncSilentAdversary())
        for pid in result.honest:
            history = result.parties[pid].history
            assert len(history) == result.parties[pid].iterations
            for record in history:
                assert record.value_count >= 5  # n - t
                assert record.witness_count >= 5

    def test_halving_convergence(self):
        result = run_real(
            [0.0, 16.0, 0.0, 16.0, 8.0, 0.0, 16.0],
            t=2,
            epsilon=0.5,
            adversary=AsyncSilentAdversary(),
        )
        # with silent Byzantine, every party uses the same 5 honest values
        values = list(result.honest_outputs.values())
        assert max(values) - min(values) <= 0.5


class TestAsyncTreeAA:
    @pytest.mark.parametrize(
        "tree_factory",
        [
            lambda: figure_tree(),
            lambda: path_tree(17),
            lambda: star_tree(6),
            lambda: random_tree(20, seed=11),
        ],
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_aa_across_families(self, tree_factory, seed):
        tree = tree_factory()
        n, t = 7, 2
        rng = random.Random(seed)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        result = run_tree(
            tree,
            inputs,
            t,
            adversary=AsyncNoiseAdversary(seed=seed),
            scheduler=RandomScheduler(seed),
        )
        assert result.completed
        outputs = list(result.honest_outputs.values())
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        assert tree_validity(tree, honest_inputs, outputs)
        assert tree_agreement(tree, outputs)

    @given(
        trees_with_vertex_choices(n_choices=7, min_vertices=2),
        st.sampled_from(["silent", "noise", "passive"]),
        st.integers(min_value=0, max_value=3),
    )
    def test_property_random_trees(self, tree_and_inputs, adversary_kind, seed):
        tree, inputs = tree_and_inputs
        adversary = {
            "silent": lambda: AsyncSilentAdversary(),
            "noise": lambda: AsyncNoiseAdversary(seed=seed),
            "passive": lambda: AsyncPassiveAdversary(),
        }[adversary_kind]()
        result = run_tree(
            tree, inputs, 2, adversary=adversary, scheduler=RandomScheduler(seed)
        )
        assert result.completed
        outputs = list(result.honest_outputs.values())
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        assert tree_validity(tree, honest_inputs, outputs)
        assert tree_agreement(tree, outputs)

    def test_iterations_scale_with_log_diameter(self):
        short = AsyncTreeAAParty(0, 4, 1, path_tree(16), path_tree(16).vertices[0])
        long = AsyncTreeAAParty(0, 4, 1, path_tree(256), path_tree(256).vertices[0])
        assert long.iterations == short.iterations + 4

    def test_witnesses_guarantee_overlap(self):
        """Any two honest parties' witness sets overlap in ≥ n − 2t
        reporters — the property the witness technique exists for."""
        tree = random_tree(15, seed=2)
        n, t = 7, 2
        rng = random.Random(5)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        result = run_tree(
            tree, inputs, t, adversary=AsyncSilentAdversary(),
            scheduler=RandomScheduler(1),
        )
        for pid in result.honest:
            for record in result.parties[pid].history:
                assert record.witness_count >= n - t
