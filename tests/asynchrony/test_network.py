"""Tests for the asynchronous network's delivery semantics."""

import pytest

from repro.asynchrony import (
    AsyncAdversary,
    AsyncParty,
    AsynchronousNetwork,
    DelaySendersScheduler,
    FIFOScheduler,
    RandomScheduler,
    SplitScheduler,
    run_async_protocol,
)
from repro.net import ByzantineModelError


class PingCollector(AsyncParty):
    """Broadcasts one ping; outputs once it heard from ``quorum`` parties."""

    def __init__(self, pid, n, t, quorum):
        super().__init__(pid, n, t)
        self.quorum = quorum
        self.heard = []

    def start(self):
        return self.broadcast(("ping", self.pid))

    def on_message(self, sender, payload):
        if isinstance(payload, tuple) and payload[0] == "ping":
            self.heard.append(sender)
            if len(self.heard) >= self.quorum and self.output is None:
                self.output = tuple(self.heard)
        return []


class TestBasics:
    def test_everyone_hears_everyone(self):
        n = 4
        result = run_async_protocol(
            n, 0, lambda pid: PingCollector(pid, n, 0, quorum=n)
        )
        assert result.completed
        for pid in range(n):
            assert sorted(result.outputs[pid]) == list(range(n))

    def test_dense_party_keys_required(self):
        with pytest.raises(ValueError):
            AsynchronousNetwork({1: PingCollector(1, 2, 0, 1)}, t=0)

    def test_trace_counts_messages(self):
        n = 3
        result = run_async_protocol(
            n, 0, lambda pid: PingCollector(pid, n, 0, quorum=1)
        )
        assert result.trace.honest_message_count == n * n
        assert result.trace.honest_payload_units > 0

    def test_max_steps_marks_incomplete(self):
        n = 4
        result = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=n + 1),  # unreachable
        )
        assert not result.completed


class TestSchedulers:
    def test_fifo_order(self):
        n = 3
        result = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=n),
            scheduler=FIFOScheduler(),
        )
        # FIFO: party 0's pings go out first, in recipient order
        assert result.outputs[0][0] == 0

    def test_random_scheduler_deterministic_per_seed(self):
        n = 5
        a = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=3),
            scheduler=RandomScheduler(9),
        )
        b = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=3),
            scheduler=RandomScheduler(9),
        )
        assert a.outputs == b.outputs

    def test_delayed_sender_arrives_last_but_arrives(self):
        n = 4
        result = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=n),
            scheduler=DelaySendersScheduler([0]),
        )
        assert result.completed
        for pid in range(1, n):
            assert result.outputs[pid][-1] == 0  # 0's ping was starved

    def test_split_scheduler_still_delivers_eventually(self):
        n = 6
        result = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=n),
            scheduler=SplitScheduler(group_a=[0, 1, 2]),
        )
        assert result.completed

    def test_fairness_window_forces_old_messages(self):
        n = 4
        result = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=n),
            scheduler=DelaySendersScheduler([0]),
            fairness_window=4,
        )
        assert result.completed
        assert result.trace.forced_fair_deliveries > 0

    def test_bad_scheduler_index_rejected(self):
        class BrokenScheduler(FIFOScheduler):
            def choose(self, pending, step):
                return 999

        with pytest.raises(ValueError, match="scheduler"):
            run_async_protocol(
                3,
                0,
                lambda pid: PingCollector(pid, 3, 0, quorum=3),
                scheduler=BrokenScheduler(),
            )


class TestStallDiagnosis:
    def test_completed_run_has_no_stall(self):
        n = 4
        result = run_async_protocol(
            n, 0, lambda pid: PingCollector(pid, n, 0, quorum=n)
        )
        assert result.completed
        assert result.stall is None

    def test_drained_queue_stall_is_diagnosed(self):
        n = 4
        result = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=n + 1),  # unreachable
        )
        assert not result.completed
        stall = result.stall
        assert stall is not None
        assert not stall.budget_exhausted
        assert stall.pending_total == 0
        assert stall.unfinished == list(range(n))
        assert stall.finished == {pid: False for pid in range(n)}
        assert "pending queue drained" in stall.summary()

    def test_step_limit_exhaustion_under_split_scheduler(self):
        # A split scheduler plus a step budget too small for the full
        # n*n ping exchange: the run must stop at the budget with traffic
        # still in flight, and say so.
        n = 6
        max_steps = 10
        result = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=n),
            scheduler=SplitScheduler(group_a=[0, 1, 2]),
            max_steps=max_steps,
        )
        assert not result.completed
        stall = result.stall
        assert stall is not None
        assert stall.budget_exhausted
        assert stall.steps == max_steps
        assert stall.max_steps == max_steps
        assert stall.pending_total > 0
        assert stall.pending_total == sum(stall.pending_by_sender.values())
        assert stall.pending_total == sum(stall.pending_by_recipient.values())
        assert stall.oldest_pending_age is not None
        assert stall.unfinished, "some honest party must be unfinished"
        assert "step budget exhausted" in stall.summary()

    def test_pending_breakdowns_name_real_parties(self):
        n = 5
        result = run_async_protocol(
            n,
            0,
            lambda pid: PingCollector(pid, n, 0, quorum=n),
            scheduler=SplitScheduler(group_a=[0, 1]),
            max_steps=7,
        )
        stall = result.stall
        assert stall is not None
        for endpoint in (*stall.pending_by_sender, *stall.pending_by_recipient):
            assert 0 <= endpoint < n


class TestAdversaryModel:
    def test_cannot_speak_for_honest(self):
        class Forger(AsyncAdversary):
            def on_start(self, network):
                return [(0, 1, "forged")]

        with pytest.raises(ByzantineModelError):
            run_async_protocol(
                4,
                1,
                lambda pid: PingCollector(pid, 4, 1, quorum=2),
                adversary=Forger(corrupt=[3]),
            )

    def test_corruption_budget_enforced(self):
        from repro.asynchrony import AsyncSilentAdversary

        with pytest.raises(ByzantineModelError):
            run_async_protocol(
                4,
                1,
                lambda pid: PingCollector(pid, 4, 1, quorum=2),
                adversary=AsyncSilentAdversary(corrupt=[2, 3]),
            )

    def test_byzantine_sender_id_is_authentic(self):
        class Liar(AsyncAdversary):
            def on_start(self, network):
                return [(3, 0, ("ping", "claims-to-be-1"))]

        result = run_async_protocol(
            4,
            1,
            lambda pid: PingCollector(pid, 4, 1, quorum=4),
            adversary=Liar(corrupt=[3]),
        )
        assert 3 in result.outputs[0]
