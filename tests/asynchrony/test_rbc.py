"""Tests for Bracha reliable broadcast: validity, consistency, totality."""

import pytest

from repro.asynchrony import (
    AsyncNoiseAdversary,
    AsyncSilentAdversary,
    BrachaBroadcast,
    EquivocatingSenderAdversary,
    RandomScheduler,
    RBCParty,
    run_async_protocol,
)


def run_rbc(n, t, origin, value, adversary=None, scheduler=None):
    return run_async_protocol(
        n,
        t,
        lambda pid: RBCParty(pid, n, t, origin=origin, value=value),
        adversary=adversary,
        scheduler=scheduler,
    )


class TestConstruction:
    def test_resilience_required(self):
        with pytest.raises(ValueError, match="n > 3t"):
            BrachaBroadcast(0, 6, 2, deliver=lambda *a: None)

    def test_unhashable_broadcast_rejected(self):
        rbc = BrachaBroadcast(0, 4, 1, deliver=lambda *a: None)
        with pytest.raises(ValueError):
            rbc.broadcast("tag", ["un", "hashable"])
        with pytest.raises(ValueError):
            rbc.broadcast(["bad tag"], "value")


class TestValidity:
    """Honest origin ⇒ every honest party delivers its value."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_all_deliver_under_random_scheduling(self, seed):
        result = run_rbc(
            7, 2, origin=0, value=42, adversary=AsyncSilentAdversary(),
            scheduler=RandomScheduler(seed),
        )
        assert result.completed
        assert set(result.honest_outputs.values()) == {42}

    def test_minimum_network(self):
        result = run_rbc(4, 1, origin=2, value="v", adversary=AsyncSilentAdversary())
        assert set(result.honest_outputs.values()) == {"v"}

    def test_survives_noise(self):
        result = run_rbc(
            7, 2, origin=1, value=3.5, adversary=AsyncNoiseAdversary(seed=8)
        )
        assert set(result.honest_outputs.values()) == {3.5}


class TestConsistencyAndTotality:
    @pytest.mark.parametrize("seed", list(range(6)))
    def test_equivocating_origin_never_splits(self, seed):
        """Consistency: whatever the scheduler does, honest parties never
        deliver two different values; totality: if anyone delivered,
        everyone did."""
        n, t = 7, 2
        adversary = EquivocatingSenderAdversary(
            make_payload=lambda pid, variant: ("init", "test", f"v{variant}"),
        )
        result = run_async_protocol(
            n,
            t,
            lambda pid: RBCParty(pid, n, t, origin=n - 1, value=None),
            adversary=adversary,
            scheduler=RandomScheduler(seed),
            max_steps=50_000,
        )
        delivered = [v for v in result.honest_outputs.values() if v is not None]
        assert len(set(delivered)) <= 1  # consistency
        if delivered:  # totality
            assert len(delivered) == len(result.honest)

    def test_silent_origin_delivers_nothing(self):
        result = run_rbc(7, 2, origin=6, value=None, adversary=AsyncSilentAdversary())
        assert all(v is None for v in result.honest_outputs.values())
        assert not result.completed  # nothing to deliver: parties wait forever


class TestPayloadHygiene:
    def test_malformed_messages_ignored(self):
        rbc = BrachaBroadcast(0, 4, 1, deliver=lambda *a: None)
        assert rbc.handle(1, "not a tuple") == []
        assert rbc.handle(1, ()) == []
        assert rbc.handle(1, ("init", "tag")) == []  # wrong arity
        assert rbc.handle(1, ("echo", "tag", "not-an-origin", "v")) == []
        assert rbc.handle(1, ("ready", "tag", 99, "v")) == []  # origin range

    def test_validator_filters_values(self):
        delivered = []
        rbc = BrachaBroadcast(
            0,
            4,
            1,
            deliver=lambda o, tag, v: delivered.append(v),
            validate=lambda v: isinstance(v, int),
        )
        assert rbc.handle(1, ("init", "tag", "not-int")) == []
        out = rbc.handle(1, ("init", "tag", 5))
        assert out and out[0][1][0] == "echo"

    def test_echo_quorum_triggers_single_ready(self):
        sent = []
        rbc = BrachaBroadcast(0, 4, 1, deliver=lambda *a: None)
        for sender in range(3):  # n - t = 3 echoes
            sent.extend(rbc.handle(sender, ("echo", "g", 2, "v")))
        readies = [p for _, p in sent if p[0] == "ready"]
        assert len(readies) == 4  # one ready, broadcast to all 4 parties

    def test_ready_amplification(self):
        """t + 1 readies make a party ready even without an echo quorum."""
        sent = []
        rbc = BrachaBroadcast(0, 4, 1, deliver=lambda *a: None)
        sent.extend(rbc.handle(1, ("ready", "g", 2, "v")))
        assert not sent  # one ready (= t) is not enough
        sent.extend(rbc.handle(2, ("ready", "g", 2, "v")))
        assert any(p[0] == "ready" for _, p in sent)

    def test_delivery_at_2t_plus_1_readies(self):
        delivered = []
        rbc = BrachaBroadcast(0, 4, 1, deliver=lambda o, g, v: delivered.append((o, v)))
        for sender in range(3):  # 2t + 1 = 3
            rbc.handle(sender, ("ready", "g", 2, "v"))
        assert delivered == [(2, "v")]

    def test_delivery_happens_once(self):
        delivered = []
        rbc = BrachaBroadcast(0, 4, 1, deliver=lambda o, g, v: delivered.append(v))
        for sender in range(4):
            rbc.handle(sender, ("ready", "g", 2, "v"))
        assert delivered == ["v"]


class TestArbitraryDeliveryOrders:
    """Hypothesis quantifies over delivery schedules: RBC's guarantees must
    hold for EVERY order the adversary can induce."""

    from hypothesis import given
    from hypothesis import strategies as st

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
    def test_validity_under_any_schedule(self, script):
        from repro.asynchrony import ScriptedScheduler

        result = run_rbc(
            4,
            1,
            origin=0,
            value="v",
            adversary=AsyncSilentAdversary(),
            scheduler=ScriptedScheduler(script),
        )
        assert result.completed
        assert set(result.honest_outputs.values()) == {"v"}

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
    def test_consistency_under_any_schedule_with_equivocation(self, script):
        from repro.asynchrony import ScriptedScheduler

        n, t = 4, 1
        adversary = EquivocatingSenderAdversary(
            make_payload=lambda pid, variant: ("init", "test", f"v{variant}"),
        )
        result = run_async_protocol(
            n,
            t,
            lambda pid: RBCParty(pid, n, t, origin=n - 1, value=None),
            adversary=adversary,
            scheduler=ScriptedScheduler(script),
            max_steps=20_000,
        )
        delivered = [v for v in result.honest_outputs.values() if v is not None]
        assert len(set(delivered)) <= 1
        if delivered and result.completed:
            assert len(delivered) == len(result.honest)
