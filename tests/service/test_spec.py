"""ScenarioSpec: serialisation, validation, execution, and bridging."""

import json
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.spec import (
    SPEC_RUNNER,
    SPEC_SWEEP_NAME,
    SPEC_VERSION,
    ScenarioSpec,
    SpecError,
    SpecVersionError,
    build_adversary,
    execute_spec_point,
    spec_cache_key,
)
from ..strategies import scenario_specs


class TestRoundTrip:
    @given(scenario_specs(runnable=False))
    def test_json_round_trip(self, spec):
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    @given(scenario_specs(runnable=False))
    def test_to_dict_is_canonical(self, spec):
        assert spec.to_dict() == spec.to_dict()
        assert spec.to_dict()["spec_version"] == SPEC_VERSION

    @given(scenario_specs(runnable=False), st.integers(0, 2**16))
    def test_with_seed_round_trips(self, spec, seed):
        reseeded = spec.with_seed(seed)
        assert reseeded.seed == seed
        assert ScenarioSpec.from_dict(reseeded.to_dict()) == reseeded

    def test_explicit_inputs_round_trip(self):
        spec = ScenarioSpec(
            protocol="real-aa", n=3, t=0, inputs=(0.0, 4.0, 8.0), known_range=8.0
        )
        assert ScenarioSpec.from_dict(spec.to_dict()).inputs == (0.0, 4.0, 8.0)

    def test_chaos_script_round_trips(self):
        spec = ScenarioSpec(
            protocol="real-aa",
            n=4,
            t=1,
            adversary="chaos:3",
            chaos_script=((0, 1, "silent"), (2, 1, "echo")),
        )
        assert ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        ) == spec


class TestForwardCompat:
    BASE = {"protocol": "real-aa", "n": 3, "t": 0}

    def test_unknown_keys_are_ignored(self):
        payload = {**self.BASE, "spec_version": 1, "future_field": [1, 2, 3]}
        assert ScenarioSpec.from_dict(payload).protocol == "real-aa"

    def test_missing_version_means_one(self):
        assert ScenarioSpec.from_dict(dict(self.BASE)).seed == 0

    @given(st.integers(min_value=SPEC_VERSION + 1, max_value=99))
    def test_newer_versions_rejected(self, version):
        with pytest.raises(SpecVersionError):
            ScenarioSpec.from_dict({**self.BASE, "spec_version": version})

    @pytest.mark.parametrize("version", ["2", 0, -1, None, 1.5])
    def test_non_positive_or_non_int_versions_rejected(self, version):
        with pytest.raises(SpecVersionError):
            ScenarioSpec.from_dict({**self.BASE, "spec_version": version})

    @given(scenario_specs(runnable=False), st.text(min_size=1, max_size=8))
    @settings(max_examples=15)
    def test_any_extra_key_is_harmless(self, spec, key):
        payload = spec.to_dict()
        if key in payload:
            return
        payload[key] = {"nested": True}
        assert ScenarioSpec.from_dict(payload) == spec


class TestValidation:
    def test_unknown_protocol(self):
        with pytest.raises(SpecError):
            ScenarioSpec(protocol="magic", n=3, t=0)

    def test_unknown_backend(self):
        with pytest.raises(SpecError):
            ScenarioSpec(protocol="real-aa", n=3, t=0, backend="gpu")

    def test_tree_protocols_need_a_tree(self):
        with pytest.raises(SpecError):
            ScenarioSpec(protocol="tree-aa", n=3, t=0)

    def test_input_length_must_match_n(self):
        with pytest.raises(SpecError):
            ScenarioSpec(protocol="real-aa", n=3, t=0, inputs=(0.0, 1.0))

    def test_corrupt_ids_in_range(self):
        with pytest.raises(SpecError):
            ScenarioSpec(protocol="real-aa", n=3, t=1, corrupt=(5,))

    def test_duplicate_corrupt_ids(self):
        with pytest.raises(SpecError):
            ScenarioSpec(protocol="real-aa", n=3, t=1, corrupt=(1, 1))

    def test_unknown_adversary_kind(self):
        with pytest.raises(SpecError):
            ScenarioSpec(protocol="real-aa", n=3, t=0, adversary="gremlin")

    def test_unknown_trace_level(self):
        with pytest.raises(SpecError):
            ScenarioSpec(protocol="real-aa", n=3, t=0, trace_level="verbose")


class TestBuildAdversary:
    def test_none_is_no_adversary_object(self):
        assert build_adversary("none") is None

    def test_crash_defaults(self):
        adversary = build_adversary("crash", t=1)
        assert adversary.crash_round == 1
        assert adversary.partial_to == 0

    def test_crash_with_arguments(self):
        adversary = build_adversary("crash:4:2", t=1)
        assert (adversary.crash_round, adversary.partial_to) == (4, 2)

    def test_seed_fallback_for_seeded_kinds(self):
        fallback = build_adversary("noise", seed=7)
        explicit = build_adversary("noise:7")
        assert fallback._rng.random() == explicit._rng.random()

    def test_malformed_arguments(self):
        with pytest.raises(SpecError):
            build_adversary("crash:soon")

    def test_unknown_kind(self):
        with pytest.raises(SpecError):
            build_adversary("gremlin")


class TestExecution:
    @given(scenario_specs())
    @settings(max_examples=15)
    def test_specs_run_on_their_own_backend(self, spec):
        outcome = spec.run()
        assert outcome.terminated
        assert outcome.rounds >= 0

    @given(scenario_specs())
    @settings(max_examples=10)
    def test_execution_is_deterministic(self, spec):
        from repro.observability import diff_runs, load_run_text

        first = execute_spec_point(spec)
        second = execute_spec_point(spec)
        trace_a = first.pop("trace_jsonl", None)
        trace_b = second.pop("trace_jsonl", None)
        assert first == second
        if trace_a is not None:
            # Traces carry wall-clock timings; equivalence is semantic.
            assert diff_runs(load_run_text(trace_a), load_run_text(trace_b)) == []

    def test_row_shape(self):
        spec = ScenarioSpec(
            protocol="tree-aa", n=5, t=1, tree="path:6", adversary="crash:2", seed=4
        )
        row = execute_spec_point(spec)
        assert row["spec"] == spec.to_dict()
        assert row["adversary"] == "crash"
        assert set(row["verdicts"]) == {
            "terminated",
            "valid",
            "agreement",
            "output_diameter",
        }
        assert "trace_jsonl" not in row

    def test_backend_parity_on_shared_spec(self):
        reference = ScenarioSpec(
            protocol="path-aa", n=5, t=1, tree="path:6", adversary="chaos:5", seed=2
        )
        batch = replace(reference, backend="batch")
        assert reference.run().honest_outputs == batch.run().honest_outputs

    def test_recorded_row_replays(self):
        from repro.observability import diff_runs, load_run_text, render_report

        spec = ScenarioSpec(
            protocol="real-aa",
            n=4,
            t=1,
            adversary="silent",
            corrupt=(2,),
            known_range=8.0,
            record=True,
        )
        row = execute_spec_point(spec)
        run = load_run_text(row["trace_jsonl"])
        assert diff_runs(run, run) == []
        assert "real-aa" in render_report(run)


class TestCacheKey:
    def test_key_matches_run_grid_key(self):
        from repro.analysis import SweepCache

        spec = ScenarioSpec(protocol="real-aa", n=4, t=1, seed=9)
        assert spec_cache_key(spec) == SweepCache.key(
            SPEC_SWEEP_NAME, SPEC_RUNNER, spec.to_dict(), spec.seed
        )

    def test_sweep_rows_serve_spec_keys(self, tmp_path):
        """A row written by ``run_grid`` is a hit for ``spec_cache_key``."""
        from repro.analysis import SweepCache, run_grid

        spec = ScenarioSpec(protocol="real-aa", n=4, t=1, known_range=8.0, seed=9)
        run_grid(
            SPEC_SWEEP_NAME,
            SPEC_RUNNER,
            [spec.to_dict()],
            jobs=1,
            cache_dir=str(tmp_path),
        )
        cached = SweepCache(str(tmp_path)).get(spec_cache_key(spec))
        assert cached is not None
        assert cached == execute_spec_point(spec)


class TestScenarioBridge:
    def test_to_spec_run_matches_execute_scenario(self):
        from repro.resilience import Scenario
        from repro.resilience.scenario import execute_scenario

        scenario = Scenario(
            protocol="tree-aa",
            n=6,
            t=1,
            inputs=(0, 3, 7, 2, 5, 1),
            adversary="chaos:9",
            corrupt=(2,),
            tree="caterpillar:4x2",
            seed=11,
        )
        direct = execute_scenario(scenario)
        via_spec = scenario.to_spec().run()
        assert dict(via_spec.honest_outputs) == dict(direct.honest_outputs)
        assert via_spec.rounds == direct.rounds

    def test_from_spec_round_trip(self):
        from repro.resilience import Scenario

        scenario = Scenario(
            protocol="real-aa",
            n=5,
            t=1,
            inputs=(0.0, 8.0, 2.0, 5.0, 1.0),
            adversary="crash:2",
            corrupt=(3,),
            seed=6,
        )
        back = Scenario.from_spec(scenario.to_spec())
        assert back.inputs == scenario.inputs
        assert back.adversary == scenario.adversary
        assert back.corrupt == scenario.corrupt

    def test_campaigns_accept_specs(self):
        from repro.resilience.campaign import CampaignConfig, run_campaign

        specs = [
            ScenarioSpec(
                protocol="real-aa",
                n=5,
                t=1,
                known_range=8.0,
                adversary="silent",
                corrupt=(0,),
                seed=seed,
            )
            for seed in range(3)
        ]
        report = run_campaign(CampaignConfig(count=1), specs=specs, no_cache=True)
        assert report.ok
        assert len(report.rows) == 3
