"""The service chaos harness itself: generation, injection, campaigns.

The CI ``service-chaos`` job runs the harness for real; these tests pin
the properties that make those runs trustworthy — deterministic seeded
generation, full failure-mode coverage, fire-exactly-once fault
sentinels — and run one miniature campaign end to end.
"""

import json
import os

import pytest

from repro.analysis.spec import ScenarioSpec
from repro.service.chaos import (
    CHAOS_ENV,
    SCENARIO_KINDS,
    ChaosConfig,
    ChaosFault,
    _claim_fault,
    armed_faults,
    chaos_execute,
    run_chaos_campaign,
)


class TestGeneration:
    def test_same_config_generates_identical_campaigns(self):
        first = ChaosConfig(scenarios=12, seed=5).generate()
        second = ChaosConfig(scenarios=12, seed=5).generate()
        assert first == second
        assert ChaosConfig(scenarios=12, seed=6).generate() != first

    def test_round_robin_covers_every_failure_mode(self):
        kinds = [s.kind for s in ChaosConfig(scenarios=9, seed=0).generate()]
        assert kinds[: len(SCENARIO_KINDS)] == list(SCENARIO_KINDS)
        assert kinds[len(SCENARIO_KINDS)] == SCENARIO_KINDS[0]

    def test_grid_sizes_stay_small_and_fast(self):
        for scenario in ChaosConfig(scenarios=25, seed=3).generate():
            assert 3 <= scenario.n_points <= 5


class TestInjection:
    def spec(self, seed):
        return ScenarioSpec(
            protocol="real-aa", n=3, t=0, known_range=8.0, seed=seed
        )

    def test_no_table_is_a_pass_through(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        row = chaos_execute(self.spec(61000))
        assert row["ok"] is True

    def test_raise_fault_fires_exactly_once(self, tmp_path):
        faults = {61001: {"kind": "raise", "once": True}}
        with armed_faults(faults, str(tmp_path / "sentinels")):
            with pytest.raises(ChaosFault):
                chaos_execute(self.spec(61001))
            # The sentinel was claimed: the retry runs clean, which is
            # what makes transient-fault scenarios deterministic.
            row = chaos_execute(self.spec(61001))
            assert row["ok"] is True

    def test_persistent_fault_fires_every_time(self, tmp_path):
        faults = {61002: {"kind": "raise", "once": False}}
        with armed_faults(faults, str(tmp_path / "sentinels")):
            for _ in range(3):
                with pytest.raises(ChaosFault):
                    chaos_execute(self.spec(61002))

    def test_unfaulted_seeds_run_clean(self, tmp_path):
        faults = {61003: {"kind": "raise", "once": False}}
        with armed_faults(faults, str(tmp_path / "sentinels")):
            assert chaos_execute(self.spec(61004))["ok"] is True

    def test_claim_fault_sentinel_is_exclusive(self, tmp_path):
        table = {"sentinel_dir": str(tmp_path)}
        fault = {"kind": "raise", "once": True}
        assert _claim_fault(table, fault, 7) is True
        assert _claim_fault(table, fault, 7) is False
        assert _claim_fault(table, fault, 8) is True

    def test_armed_faults_restores_the_environment(self, tmp_path):
        os.environ.pop(CHAOS_ENV, None)
        with armed_faults({1: {"kind": "raise"}}, str(tmp_path)):
            table = json.loads(os.environ[CHAOS_ENV])
            assert table["faults"] == {"1": {"kind": "raise"}}
        assert CHAOS_ENV not in os.environ


class TestCampaign:
    def test_one_scenario_per_kind_upholds_every_invariant(self, tmp_path):
        config = ChaosConfig(scenarios=len(SCENARIO_KINDS), seed=11)
        report = run_chaos_campaign(config, workdir=str(tmp_path))
        assert report.scenarios == len(SCENARIO_KINDS)
        assert report.ok, json.dumps(report.to_dict(), indent=2)
        payload = report.to_dict()
        assert payload["ok"] is True and payload["violations"] == []
        assert "7 scenarios, ok" in report.summary()
