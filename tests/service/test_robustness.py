"""Fault tolerance at the service surface: retry, quarantine, cancel,
backpressure, and the client-side hardening.

Fault injection reuses the chaos harness's executor
(``repro.service.chaos.chaos_execute``), armed per-seed through the
environment — the same machinery the CI chaos job drives, exercised
here through the HTTP surface the way a client would see it.
"""

import threading
import time

import pytest

from repro.analysis.spec import ScenarioSpec
from repro.service import (
    JobStore,
    ScenarioService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
    Worker,
)
from repro.service.chaos import CHAOS_EXECUTOR, SLOW_DELAY, armed_faults
from repro.service.journal import (
    iter_jsonl_tolerant,
    journal_path,
    replay_journal,
)
from repro.service.worker import RetryPolicy, resolve_executor


def make_points(base_seed, count=3):
    return [
        {
            "protocol": "real-aa",
            "n": 3,
            "t": 0,
            "known_range": 8.0,
            "adversary": "none",
            "seed": base_seed + offset,
        }
        for offset in range(count)
    ]


def make_service(tmp_path, **overrides):
    settings = dict(
        port=0,
        cache_dir=str(tmp_path / "cache"),
        data_dir=str(tmp_path / "data"),
        executor=CHAOS_EXECUTOR,
        retry_base_delay=0.01,
    )
    settings.update(overrides)
    return ScenarioService(ServiceConfig(**settings))


def wait_for(predicate, timeout=20.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestRetryPolicy:
    def test_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=2.0, jitter=0.5)
        first = policy.delay("job-0001", 0, 1)
        assert first == policy.delay("job-0001", 0, 1)
        assert first != policy.delay("job-0001", 1, 1)
        for attempt in range(1, 8):
            delay = policy.delay("job-0001", 0, attempt)
            assert 0 < delay <= 2.0 * 1.5

    def test_backoff_grows_before_the_cap(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=100.0, jitter=0.0)
        delays = [policy.delay("j", 0, attempt) for attempt in (1, 2, 3)]
        assert delays == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
        ]


class TestExecutorResolution:
    def test_default_is_the_real_executor(self):
        from repro.analysis.spec import execute_spec_point

        assert resolve_executor(None) is execute_spec_point

    def test_bad_paths_are_rejected_at_construction(self):
        with pytest.raises(ValueError):
            resolve_executor("no-colon-here")
        with pytest.raises(ValueError):
            resolve_executor("repro.service.worker:DOES_NOT_EXIST")


class TestDoneWithErrors:
    def test_poisoned_point_is_quarantined_not_fatal(self, tmp_path, client_pair):
        service, client = client_pair
        points = make_points(51000)
        faults = {points[1]["seed"]: {"kind": "raise", "once": False}}
        with armed_faults(faults, str(tmp_path / "sentinels")):
            job_id = client.submit({"points": points})["job_id"]
            final = client.wait(job_id, timeout=30.0)
        assert final["status"] == "done_with_errors"
        counts = final["counts"]
        assert counts["failed"] == 1
        assert counts["done"] + counts["cached"] == len(points) - 1
        statuses = [point["status"] for point in final["points"]]
        assert statuses[1] == "failed"
        assert "injected fault" in final["points"][1]["error"]
        kinds = [e["event"] for e in client.events(job_id)]
        assert "point_retry" in kinds and "point_failed" in kinds
        # The healthy points' rows are still served.
        rows = client.results(job_id)
        assert sum(1 for row in rows if row["row"]) == len(points) - 1

    def test_transient_fault_retries_to_done(self, tmp_path, client_pair):
        service, client = client_pair
        points = make_points(52000)
        faults = {points[0]["seed"]: {"kind": "raise", "once": True}}
        with armed_faults(faults, str(tmp_path / "sentinels")):
            job_id = client.submit({"points": points})["job_id"]
            final = client.wait(job_id, timeout=30.0)
        assert final["status"] == "done"
        kinds = [e["event"] for e in client.events(job_id)]
        assert "point_retry" in kinds and "point_failed" not in kinds


class TestCancellation:
    def test_http_cancel_mid_grid_is_consistent(self, tmp_path):
        points = make_points(53000, count=4)
        faults = {
            point["seed"]: {"kind": "slow", "once": False, "delay": SLOW_DELAY}
            for point in points
        }
        with armed_faults(faults, str(tmp_path / "sentinels")):
            with make_service(tmp_path) as service:
                client = ServiceClient(service.url, timeout=10.0)
                job_id = client.submit({"points": points})["job_id"]
                assert wait_for(
                    lambda: client.job(job_id)["status"] != "queued"
                )
                body = client.cancel(job_id)
                assert body["cancel_requested"] is True
                final = client.wait(job_id, timeout=30.0)
                assert final["status"] in ("cancelled", "done")
                counts = final["counts"]
                assert counts["pending"] == 0 and counts["running"] == 0
                kinds = [e["event"] for e in client.events(job_id)]
                assert "cancel_requested" in kinds

                # A second cancel of a terminal job is refused with 409.
                with pytest.raises(ServiceClientError) as excinfo:
                    client.cancel(job_id)
                assert excinfo.value.code == 409

                # Partial-JSONL consistency: the journal records each
                # point's terminal verdict exactly once, and the folded
                # states agree with the store's final counts.
                journal = journal_path(service.config.data_dir)
                folded = replay_journal(journal)[job_id]
                assert len(folded.point_states) == len(points)
                journaled = sorted(
                    state for state, _ in folded.point_states.values()
                )
                from_store = sorted(
                    point["status"] for point in final["points"]
                )
                assert journaled == from_store
                indices = [
                    record["index"]
                    for record in iter_jsonl_tolerant(journal)
                    if record.get("type") == "point_terminal"
                    and record.get("job_id") == job_id
                ]
                assert sorted(indices) == sorted(set(indices))

    def test_cancel_unknown_job_is_404(self, client_pair):
        _, client = client_pair
        with pytest.raises(ServiceClientError) as excinfo:
            client.cancel("job-9999")
        assert excinfo.value.code == 404


class TestBackpressure:
    def test_overload_returns_429_while_healthz_stays_green(self, tmp_path):
        points = make_points(54000)
        faults = {
            point["seed"]: {"kind": "slow", "once": True, "delay": SLOW_DELAY}
            for point in points
        }
        with armed_faults(faults, str(tmp_path / "sentinels")):
            with make_service(tmp_path, max_queue_depth=1) as service:
                client = ServiceClient(service.url, timeout=10.0)
                first = client.submit({"points": points})["job_id"]
                assert wait_for(
                    lambda: client.job(first)["status"] != "queued"
                )
                second = client.submit({"points": points})["job_id"]
                with pytest.raises(ServiceClientError) as excinfo:
                    client.submit({"points": points})
                shed = excinfo.value
                assert shed.code == 429
                assert shed.retry_after is not None and shed.retry_after >= 1
                # Overload is not unhealth: liveness must stay green
                # while admission control sheds new jobs.
                assert client.healthy()
                assert client.wait(first, timeout=30.0)["status"] == "done"
                assert client.wait(second, timeout=30.0)["status"] == "done"
                # Once drained, submissions are accepted again.
                third = client.submit({"points": points})["job_id"]
                assert client.wait(third, timeout=30.0)["status"] == "done"

    def test_client_retries_ride_out_the_429(self, tmp_path):
        points = make_points(55000)
        faults = {
            point["seed"]: {"kind": "slow", "once": True, "delay": SLOW_DELAY}
            for point in points
        }
        with armed_faults(faults, str(tmp_path / "sentinels")):
            with make_service(tmp_path, max_queue_depth=1) as service:
                client = ServiceClient(service.url, timeout=10.0, retries=5)
                first = client.submit({"points": points})["job_id"]
                assert wait_for(
                    lambda: client.job(first)["status"] != "queued"
                )
                second = client.submit({"points": points})["job_id"]
                # With retries enabled the shed submission blocks and
                # retransmits until the queue drains, then succeeds.
                third = client.submit({"points": points})["job_id"]
                for job_id in (first, second, third):
                    assert client.wait(job_id, timeout=30.0)["status"] == "done"


class TestClientHardening:
    def test_query_urlencodes_filter_values(self, client_pair):
        _, client = client_pair
        # With f-string query building, '&' and '=' inside the value
        # would split into a bogus second filter and 400; urlencoded,
        # the service sees one (unmatched) filter and returns [].
        assert client.query(adversary="a b&ok=true") == []
        assert client.query(protocol="real-aa&n") == []

    def test_query_rejects_unknown_fields(self, client_pair):
        _, client = client_pair
        with pytest.raises(ServiceClientError) as excinfo:
            client.query(nonsense="1")
        assert excinfo.value.code == 400

    def test_wait_deadline_checked_before_sleeping(self, tmp_path):
        points = make_points(56000)
        faults = {
            point["seed"]: {"kind": "slow", "once": False, "delay": SLOW_DELAY}
            for point in points
        }
        with armed_faults(faults, str(tmp_path / "sentinels")):
            with make_service(tmp_path) as service:
                client = ServiceClient(service.url, timeout=10.0)
                job_id = client.submit({"points": points})["job_id"]
                started = time.monotonic()
                # A huge poll interval must not buy extra time past the
                # deadline: wait() clamps the sleep to the remaining
                # budget and raises as soon as it expires.
                with pytest.raises(TimeoutError) as excinfo:
                    client.wait(job_id, timeout=0.3, interval=30.0)
                elapsed = time.monotonic() - started
                assert elapsed < 5.0
                # The error carries the last observed status.
                assert job_id in str(excinfo.value)
                assert (
                    "queued" in str(excinfo.value)
                    or "running" in str(excinfo.value)
                )
                service.cancel_job(job_id)

    def test_retries_recover_from_a_connection_error(self, tmp_path):
        # Nothing listens on the target port for the first ~0.2s; a
        # retrying client must absorb the connection refusals.
        with make_service(tmp_path) as service:
            host, port = service.address
            probe = ServiceClient(f"http://{host}:{port}", timeout=5.0)
            assert probe.healthy()
        # Service is now down; port is free again.
        late = ScenarioService(
            ServiceConfig(
                host=host,
                port=port,
                cache_dir=str(tmp_path / "cache"),
                data_dir=str(tmp_path / "data"),
            )
        )
        starter = threading.Timer(0.3, late.start)
        starter.start()
        try:
            client = ServiceClient(
                f"http://{host}:{port}", timeout=5.0, retries=8, backoff=0.1
            )
            assert client.info()["service"]
        finally:
            starter.join()
            late.shutdown()

    def test_zero_retries_fail_fast(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=1.0)
        with pytest.raises(OSError):
            client.info()


class TestWorkerDrainLoop:
    def test_job_level_crash_fails_the_job_not_the_thread(self):
        specs = [
            ScenarioSpec(
                protocol="real-aa", n=3, t=0, known_range=8.0, seed=seed
            )
            for seed in range(57000, 57002)
        ]
        store = JobStore()
        worker = Worker(store, no_cache=True)
        original = worker._serve_cached
        calls = []

        def boom(job):
            if not calls:
                calls.append(job.job_id)
                raise RuntimeError("job-level explosion")
            return original(job)

        worker._serve_cached = boom
        worker.start()
        try:
            doomed = store.create(specs)
            worker.submit(doomed)
            assert wait_for(lambda: store.job_status(doomed) == "failed")
            kinds = [e["event"] for e in store.events_since(doomed, 0)]
            assert "error" in kinds
            assert store.counts(doomed)["cancelled"] == len(specs)
            # The drain loop survived: the next job runs to completion.
            healthy = store.create(specs)
            worker.submit(healthy)
            assert wait_for(lambda: store.job_status(healthy) == "done")
        finally:
            worker.stop()
            worker.join(timeout=15)
        assert not worker.is_alive()


@pytest.fixture
def client_pair(tmp_path):
    with make_service(tmp_path) as service:
        yield service, ServiceClient(service.url, timeout=10.0)
