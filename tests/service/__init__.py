"""Tests for :mod:`repro.analysis.spec` and :mod:`repro.service`."""
