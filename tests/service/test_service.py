"""The scenario service end to end: HTTP round trips, dedupe, shutdown."""

import json

import pytest

from repro.service import (
    PlanError,
    ScenarioService,
    ServiceClient,
    ServiceClientError,
    ServiceConfig,
)

#: A small mixed-backend grid (4 points) used by most round-trip tests.
GRID_PAYLOAD = {
    "base": {
        "protocol": "real-aa",
        "n": 4,
        "t": 1,
        "known_range": 8.0,
        "adversary": "silent",
        "seed": 3,
    },
    "grid": {"t": [0, 1], "backend": ["reference", "batch"]},
}

#: Two recorded points whose traces the diff/report endpoints serve.
RECORDED_PAYLOAD = {
    "points": [
        {
            "protocol": "real-aa",
            "n": 4,
            "t": 1,
            "known_range": 8.0,
            "adversary": "none",
            "seed": 1,
            "record": True,
        },
        {
            "protocol": "real-aa",
            "n": 4,
            "t": 1,
            "known_range": 8.0,
            "adversary": "crash:2",
            "corrupt": [0],
            "seed": 1,
            "record": True,
        },
    ]
}


@pytest.fixture
def service(tmp_path):
    """A running service on a free loopback port with isolated dirs."""
    config = ServiceConfig(
        port=0,
        cache_dir=str(tmp_path / "cache"),
        data_dir=str(tmp_path / "data"),
    )
    with ScenarioService(config) as running:
        yield running


@pytest.fixture
def client(service):
    """An HTTP client bound to the running test service."""
    return ServiceClient(service.url, timeout=10.0)


class TestEndpoints:
    def test_info_and_health(self, client):
        info = client.info()
        assert info["service"]
        assert any("/jobs" in endpoint for endpoint in info["endpoints"])
        assert client.healthy()

    def test_submit_poll_results_round_trip(self, client):
        accepted = client.submit(GRID_PAYLOAD)
        assert accepted["points"] == 4
        status = client.wait(accepted["job_id"], timeout=60.0)
        assert status["status"] == "done"
        assert status["counts"]["done"] + status["counts"]["cached"] == 4

        records = client.results(accepted["job_id"])
        assert len(records) == 4
        assert {record["row"]["backend"] for record in records} == {
            "reference",
            "batch",
        }
        assert all(record["row"]["ok"] for record in records)

    def test_jobs_listing_and_events(self, client):
        accepted = client.submit(GRID_PAYLOAD)
        client.wait(accepted["job_id"], timeout=60.0)
        listed = client.jobs()
        assert [job["job_id"] for job in listed] == [accepted["job_id"]]

        events = client.events(accepted["job_id"])
        kinds = [event["event"] for event in events]
        assert "cache_scan" in kinds
        assert "results_persisted" in kinds
        later = client.events(accepted["job_id"], since=len(events))
        assert later == []

    def test_trace_report_and_diff(self, client):
        accepted = client.submit(RECORDED_PAYLOAD)
        client.wait(accepted["job_id"], timeout=60.0)
        job_id = accepted["job_id"]

        trace = client.trace(job_id, 0)
        assert '"type": "run_header"' in trace
        report = client.report(job_id, 0)
        assert "real-aa" in report

        same = client.diff(job_id, 0, 0)
        assert same["equivalent"] is True
        different = client.diff(job_id, 0, 1)
        assert different["equivalent"] is False
        assert different["differences"]

    def test_query_accumulates_rows(self, client):
        accepted = client.submit(GRID_PAYLOAD)
        client.wait(accepted["job_id"], timeout=60.0)
        everything = client.query()
        assert len(everything) == 4
        batch_only = client.query(backend="batch")
        assert len(batch_only) == 2
        assert client.query(ok="true", n="4") == everything

    def test_query_survives_restart(self, tmp_path):
        config = ServiceConfig(
            port=0,
            cache_dir=str(tmp_path / "cache"),
            data_dir=str(tmp_path / "data"),
        )
        with ScenarioService(config) as first:
            client = ServiceClient(first.url, timeout=10.0)
            accepted = client.submit(GRID_PAYLOAD)
            client.wait(accepted["job_id"], timeout=60.0)
        with ScenarioService(config) as second:
            rows = ServiceClient(second.url, timeout=10.0).query()
            assert len(rows) == 4
            assert {row["job_id"] for row in rows} == {accepted["job_id"]}


class TestDedupe:
    def test_identical_resubmission_is_cached(self, client):
        first = client.submit(GRID_PAYLOAD)
        done = client.wait(first["job_id"], timeout=60.0)
        assert done["counts"]["cached"] == 0

        second = client.submit(GRID_PAYLOAD)
        status = client.wait(second["job_id"], timeout=60.0)
        assert status["status"] == "done"
        # The dedupe contract: at least 90% of a repeat grid is served
        # from the cache (here: all of it).
        assert status["counts"]["cached"] >= 0.9 * 4

        first_rows = [r["row"] for r in client.results(first["job_id"])]
        second_rows = [r["row"] for r in client.results(second["job_id"])]
        assert first_rows == second_rows

    def test_cache_shared_with_local_sweeps(self, tmp_path, client, service):
        """Rows computed by ``run_grid`` directly are service cache hits."""
        from repro.analysis import run_grid
        from repro.analysis.spec import SPEC_RUNNER, SPEC_SWEEP_NAME
        from repro.service import plan_points

        specs = plan_points(GRID_PAYLOAD)
        run_grid(
            SPEC_SWEEP_NAME,
            SPEC_RUNNER,
            [spec.to_dict() for spec in specs],
            jobs=1,
            cache_dir=service.config.cache_dir,
        )
        accepted = client.submit(GRID_PAYLOAD)
        status = client.wait(accepted["job_id"], timeout=60.0)
        assert status["counts"]["cached"] == 4


class TestShutdown:
    def test_graceful_shutdown_mid_job(self, tmp_path):
        config = ServiceConfig(
            port=0, cache_dir=str(tmp_path / "cache"), no_cache=True
        )
        payload = {
            "base": {
                "protocol": "tree-aa",
                "n": 6,
                "t": 1,
                "tree": "caterpillar:6x3",
            },
            "grid": {"seed": list(range(12))},
        }
        service = ScenarioService(config).start()
        try:
            job_id = service.submit(payload)
            service.shutdown()
        finally:
            service.shutdown()
        job = service.store.get(job_id)
        assert job.status in ("done", "cancelled")
        for point in job.points:
            assert point.status in ("done", "cached", "cancelled")

    def test_http_shutdown_stops_worker(self, tmp_path):
        config = ServiceConfig(port=0, no_cache=True)
        with ScenarioService(config) as service:
            client = ServiceClient(service.url, timeout=10.0)
            client.shutdown()
            service.worker.join(timeout=10)
            assert not service.worker.is_alive()

    def test_submissions_after_stop_are_rejected(self, tmp_path):
        config = ServiceConfig(port=0, no_cache=True)
        with ScenarioService(config) as service:
            client = ServiceClient(service.url, timeout=10.0)
            service.worker.stop()
            service.worker.join(timeout=10)
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit(RECORDED_PAYLOAD)
            assert excinfo.value.status == 503


class TestErrors:
    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("job-9999")
        assert excinfo.value.status == 404

    def test_bad_payload_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit({"points": []})
        assert excinfo.value.status == 400

    def test_bad_filter_field_is_400(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.query(colour="red")
        assert excinfo.value.status == 400

    def test_unrecorded_point_trace_is_400(self, client):
        accepted = client.submit(GRID_PAYLOAD)
        client.wait(accepted["job_id"], timeout=60.0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.trace(accepted["job_id"], 0)
        assert excinfo.value.status == 400
        assert "record" in str(excinfo.value)

    def test_in_process_submit_validates(self, service):
        with pytest.raises(PlanError):
            service.submit({"nothing": True})


class TestPoolMode:
    def test_pool_execution_matches_inline(self, tmp_path):
        inline_rows = _run_rows(tmp_path / "inline", pool_jobs=1)
        pooled_rows = _run_rows(tmp_path / "pool", pool_jobs=2)
        assert inline_rows == pooled_rows


def _run_rows(root, pool_jobs):
    """Run the standard grid on a fresh service; return its result rows."""
    config = ServiceConfig(
        port=0,
        cache_dir=str(root / "cache"),
        data_dir=str(root / "data"),
        pool_jobs=pool_jobs,
    )
    with ScenarioService(config) as service:
        client = ServiceClient(service.url, timeout=10.0)
        accepted = client.submit(GRID_PAYLOAD)
        client.wait(accepted["job_id"], timeout=120.0)
        records = client.results(accepted["job_id"])
    return [json.dumps(record["row"], sort_keys=True) for record in records]
