"""The job planner: payload shapes, deterministic seeding, and limits."""

import pytest

from repro.analysis.parallel import point_seed
from repro.analysis.spec import SPEC_SWEEP_NAME
from repro.service import MAX_POINTS, PlanError, plan_points

BASE = {"protocol": "real-aa", "n": 4, "t": 1, "known_range": 8.0}


class TestPoints:
    def test_explicit_points_plan_verbatim(self):
        specs = plan_points({"points": [dict(BASE, seed=5)]})
        assert len(specs) == 1
        assert specs[0].seed == 5
        assert specs[0].protocol == "real-aa"

    def test_missing_seed_is_derived_deterministically(self):
        (spec,) = plan_points({"points": [dict(BASE)]})
        assert spec.seed == point_seed(SPEC_SWEEP_NAME, dict(BASE), 0)
        (again,) = plan_points({"points": [dict(BASE)]})
        assert spec.seed == again.seed

    def test_base_seed_perturbs_derived_seeds(self):
        (zero,) = plan_points({"points": [dict(BASE)]}, base_seed=0)
        (one,) = plan_points({"points": [dict(BASE)]}, base_seed=1)
        assert zero.seed != one.seed

    def test_explicit_seed_ignores_base_seed(self):
        (spec,) = plan_points({"points": [dict(BASE, seed=7)]}, base_seed=99)
        assert spec.seed == 7


class TestGrid:
    def test_grid_is_cartesian_product(self):
        specs = plan_points(
            {
                "base": BASE,
                "grid": {"t": [0, 1], "backend": ["reference", "batch"]},
            }
        )
        assert len(specs) == 4
        assert {(s.t, s.backend) for s in specs} == {
            (0, "reference"),
            (0, "batch"),
            (1, "reference"),
            (1, "batch"),
        }

    def test_grid_overrides_base_fields(self):
        specs = plan_points({"base": dict(BASE, seed=3), "grid": {"n": [4, 5]}})
        assert [s.n for s in specs] == [4, 5]
        assert all(s.seed == 3 for s in specs)


class TestErrors:
    @pytest.mark.parametrize(
        "payload",
        [
            [],
            {},
            {"points": []},
            {"points": "not-a-list"},
            {"points": [["not", "a", "dict"]]},
            {"grid": {"t": [0, 1]}},
            {"base": BASE, "grid": {}},
            {"base": BASE, "grid": {"t": []}},
            {"base": BASE, "grid": {"t": "not-a-list"}},
        ],
    )
    def test_malformed_payloads(self, payload):
        with pytest.raises(PlanError):
            plan_points(payload)

    def test_invalid_spec_dicts_become_plan_errors(self):
        with pytest.raises(PlanError):
            plan_points({"points": [{"protocol": "magic", "n": 3, "t": 0}]})

    def test_oversized_grids_rejected(self):
        axis = list(range(70))
        with pytest.raises(PlanError):
            plan_points({"base": BASE, "grid": {"seed": axis, "n": axis}})
        assert 70 * 70 > MAX_POINTS
