"""Crash recovery: journaled jobs survive a dead service process.

The satellite requirement this file pins: kill a service over a
populated data directory and restart it — journaled jobs must resume
under their original ids with already-finished points deduped through
the sweep cache.  Covered twice: in-process (``simulate_crash``, which
leaves the journal exactly the way ``kill -9`` would) and end-to-end
with a real ``repro serve`` subprocess killed with SIGKILL.
"""

import json
import os
import signal
import subprocess
import sys
import time

from repro.analysis.spec import ScenarioSpec
from repro.service import (
    JobJournal,
    JobStore,
    ScenarioService,
    ServiceClient,
    ServiceConfig,
)
from repro.service.chaos import (
    CHAOS_ENV,
    CHAOS_EXECUTOR,
    armed_faults,
    simulate_crash,
)
from repro.service.journal import journal_path, replay_journal

POINTS = [
    {
        "protocol": "real-aa",
        "n": 3,
        "t": 0,
        "known_range": 8.0,
        "adversary": "none",
        "seed": 41000 + offset,
    }
    for offset in range(3)
]

PAYLOAD = {"points": POINTS}


def make_config(tmp_path, **overrides):
    settings = dict(
        port=0,
        cache_dir=str(tmp_path / "cache"),
        data_dir=str(tmp_path / "data"),
        executor=CHAOS_EXECUTOR,
        retry_base_delay=0.01,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)


def wait_for(predicate, timeout=20.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestStoreRestore:
    def test_restore_reruns_finished_points_keeps_verdicts(self):
        specs = [
            ScenarioSpec(
                protocol="real-aa", n=3, t=0, known_range=8.0, seed=seed
            )
            for seed in range(4)
        ]
        store = JobStore()
        job = store.restore(
            "job-0007",
            specs,
            {0: ("done", None), 1: ("failed", "boom"), 2: ("cancelled", None)},
        )
        assert job.job_id == "job-0007"
        # done comes back pending (the cache scan re-serves it); spent
        # verdicts — failed, cancelled — are preserved as-is.
        points = store.summary(job)["points"]
        assert [point["status"] for point in points] == [
            "pending",
            "failed",
            "cancelled",
            "pending",
        ]
        assert points[1]["error"] == "boom"
        events = [e["event"] for e in store.events_since(job, 0)]
        assert events == ["job_recovered"]

    def test_restore_advances_the_id_counter(self):
        store = JobStore()
        store.restore("job-0007", [], {})
        fresh = store.create([])
        assert fresh.job_id == "job-0008"


class TestInProcessCrash:
    def test_killed_service_resumes_with_cache_dedupe(self, tmp_path):
        faults = {
            # The last point hangs long enough that the "crashed"
            # worker thread stays parked; the sentinel makes the
            # recovered service's re-run of it clean.
            POINTS[-1]["seed"]: {"kind": "slow", "once": True, "delay": 600.0}
        }
        with armed_faults(faults, str(tmp_path / "sentinels")):
            first = ScenarioService(make_config(tmp_path)).start()
            job_id = first.submit(PAYLOAD)
            job = first.store.get(job_id)
            assert wait_for(
                lambda: first.store.counts(job)["done"]
                + first.store.counts(job)["cached"]
                >= len(POINTS) - 1
            )
            simulate_crash(first)

            # The journal a crash leaves behind: submission plus the
            # finished points' terminal records, no job_terminal line.
            journal = replay_journal(
                journal_path(make_config(tmp_path).data_dir)
            )
            assert journal[job_id].terminal_status is None
            assert len(journal[job_id].point_states) >= len(POINTS) - 1

            with ScenarioService(make_config(tmp_path)) as second:
                assert second.recovered_jobs == [job_id]
                recovered = second.store.get(job_id)
                assert recovered is not None
                assert wait_for(
                    lambda: second.store.job_status(recovered) == "done"
                )
                counts = second.store.counts(recovered)
                # Finished points were not recomputed: the cache scan
                # served them back as `cached`.
                assert counts["cached"] >= len(POINTS) - 1
                assert counts["cached"] + counts["done"] == len(POINTS)
                events = [
                    e["event"]
                    for e in second.store.events_since(recovered, 0)
                ]
                assert events[0] == "job_recovered"
                assert "cache_scan" in events

    def test_third_boot_finds_a_compacted_quiet_journal(self, tmp_path):
        with armed_faults({}, str(tmp_path / "sentinels")):
            with ScenarioService(make_config(tmp_path)) as service:
                job_id = service.submit(PAYLOAD)
                job = service.store.get(job_id)
                assert wait_for(
                    lambda: service.store.job_status(job) == "done"
                )
            # The job is terminal, so the next boot compacts its
            # records away and recovers nothing.
            with ScenarioService(make_config(tmp_path)) as again:
                assert again.recovered_jobs == []
            data_dir = make_config(tmp_path).data_dir
            assert replay_journal(journal_path(data_dir)) == {}

    def test_unplannable_journal_entries_are_failed_not_looped(self, tmp_path):
        # A journal from an incompatible spec schema cannot be
        # re-planned; the service must fail it once, not retry forever.
        data_dir = str(tmp_path / "data")
        journal = JobJournal(journal_path(data_dir))
        journal.record_submitted("job-0001", [{"protocol": "no-such"}])
        journal.close()
        with ScenarioService(make_config(tmp_path)) as service:
            assert service.recovered_jobs == []
        replayed = replay_journal(journal_path(data_dir))
        assert replayed == {} or replayed["job-0001"].terminal_status == (
            "failed"
        )
        with ScenarioService(make_config(tmp_path)) as service:
            assert service.recovered_jobs == []


class TestSubprocessKill:
    def test_sigkilled_serve_process_resumes_after_restart(self, tmp_path):
        faults = {
            "sentinel_dir": str(tmp_path / "sentinels"),
            "faults": {
                str(POINTS[-1]["seed"]): {
                    "kind": "slow",
                    "once": True,
                    "delay": 600.0,
                }
            },
        }
        env = dict(os.environ)
        env[CHAOS_ENV] = json.dumps(faults)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--data-dir",
            str(tmp_path / "data"),
            "--executor",
            CHAOS_EXECUTOR,
        ]
        root = os.path.join(os.path.dirname(__file__), "..", "..")

        def spawn():
            proc = subprocess.Popen(
                argv,
                cwd=root,
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving on "), banner
            return proc, banner.split()[-1]

        proc, url = spawn()
        try:
            client = ServiceClient(url, timeout=10.0)
            job_id = client.submit(PAYLOAD)["job_id"]
            journal = journal_path(str(tmp_path / "data"))
            assert wait_for(
                lambda: len(
                    replay_journal(journal).get(job_id).point_states
                    if replay_journal(journal).get(job_id)
                    else {}
                )
                >= len(POINTS) - 1
            )
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        proc, url = spawn()
        try:
            recovered_line = proc.stdout.readline() + proc.stdout.readline()
            assert "recovered 1 unfinished job(s)" in recovered_line
            assert job_id in recovered_line
            client = ServiceClient(url, timeout=10.0)
            final = client.wait(job_id, timeout=60.0)
            assert final["status"] == "done"
            counts = final["counts"]
            # SIGKILL can land between a point's journal record and its
            # cache write (the journal is appended first), so the last
            # finished point may be recomputed; every earlier one must
            # dedupe through the cache, and nothing may be lost.
            assert counts["cached"] >= len(POINTS) - 2
            assert counts["cached"] >= 1
            assert counts["cached"] + counts["done"] == len(POINTS)
            client.shutdown()
            proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
