"""The crash-safe job journal: append, replay, tolerance, compaction.

The journal is the service's write-ahead log (``repro.service.journal``);
these tests pin the record shapes, the last-record-wins replay fold, the
torn-tail tolerance that recovery depends on, and the atomic compaction
that keeps the file bounded by live work.
"""

import json
import os

import pytest

from repro.service.journal import (
    JOURNAL_NAME,
    JOURNAL_SCHEMA_VERSION,
    JobJournal,
    compact_journal,
    iter_jsonl_tolerant,
    journal_path,
    recoverable_jobs,
    replay_journal,
)


@pytest.fixture
def path(tmp_path):
    return journal_path(str(tmp_path / "data"))


def read_lines(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestAppend:
    def test_fresh_journal_starts_with_header(self, path):
        journal = JobJournal(path)
        journal.close()
        lines = read_lines(path)
        assert lines == [
            {
                "type": "journal_header",
                "schema_version": JOURNAL_SCHEMA_VERSION,
            }
        ]

    def test_journal_path_uses_the_canonical_name(self, tmp_path):
        assert journal_path(str(tmp_path)) == str(tmp_path / JOURNAL_NAME)

    def test_reopening_does_not_duplicate_the_header(self, path):
        JobJournal(path).close()
        JobJournal(path).close()
        kinds = [record["type"] for record in read_lines(path)]
        assert kinds == ["journal_header"]

    def test_record_shapes(self, path):
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [{"seed": 7}])
        journal.record_point("job-0001", 0, "done")
        journal.record_point("job-0001", 1, "failed", error="boom")
        journal.record_job("job-0001", "done_with_errors")
        journal.close()
        lines = read_lines(path)[1:]
        assert lines[0] == {
            "type": "job_submitted",
            "job_id": "job-0001",
            "specs": [{"seed": 7}],
        }
        assert lines[1] == {
            "type": "point_terminal",
            "job_id": "job-0001",
            "index": 0,
            "status": "done",
        }
        assert lines[2]["error"] == "boom"
        assert lines[3] == {
            "type": "job_terminal",
            "job_id": "job-0001",
            "status": "done_with_errors",
        }

    def test_close_is_idempotent_and_drops_late_appends(self, path):
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [])
        journal.close()
        journal.close()
        # A crashed process cannot append either; post-close writes are
        # silently dropped instead of raising into the worker thread.
        journal.record_point("job-0001", 0, "done")
        assert len(read_lines(path)) == 2


class TestReplay:
    def test_folds_points_and_terminal_status(self, path):
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [{"seed": 1}, {"seed": 2}])
        journal.record_point("job-0001", 0, "done")
        journal.record_point("job-0001", 1, "failed", error="boom")
        journal.record_job("job-0001", "done_with_errors")
        journal.close()
        jobs = replay_journal(path)
        assert list(jobs) == ["job-0001"]
        job = jobs["job-0001"]
        assert job.specs == [{"seed": 1}, {"seed": 2}]
        assert job.point_states == {
            0: ("done", None),
            1: ("failed", "boom"),
        }
        assert job.terminal_status == "done_with_errors"

    def test_last_point_record_wins(self, path):
        # A recovered-and-re-run point journals a second verdict; the
        # fresh outcome must supersede the pre-crash one.
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [{"seed": 1}])
        journal.record_point("job-0001", 0, "failed", error="flaky")
        journal.record_point("job-0001", 0, "done")
        journal.close()
        assert replay_journal(path)["job-0001"].point_states == {
            0: ("done", None)
        }

    def test_torn_tail_is_skipped_not_fatal(self, path):
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [{"seed": 1}])
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"type": "point_terminal", "job_id": "jo')
        jobs = replay_journal(path)
        assert list(jobs) == ["job-0001"]
        assert jobs["job-0001"].point_states == {}

    def test_orphan_records_without_submission_are_dropped(self, path):
        # If the submission line itself was the torn one, the job's
        # specs are gone: nothing to re-plan, so its records are noise.
        journal = JobJournal(path)
        journal.record_point("ghost", 0, "done")
        journal.record_job("ghost", "done")
        journal.close()
        assert replay_journal(path) == {}

    def test_missing_file_replays_empty(self, tmp_path):
        assert replay_journal(str(tmp_path / "absent.jsonl")) == {}
        assert list(iter_jsonl_tolerant(str(tmp_path / "absent.jsonl"))) == []


class TestRecoverable:
    def test_only_non_terminal_jobs_in_submission_order(self, path):
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [{"seed": 1}])
        journal.record_submitted("job-0002", [{"seed": 2}])
        journal.record_submitted("job-0003", [{"seed": 3}])
        journal.record_job("job-0002", "done")
        journal.close()
        assert [job.job_id for job in recoverable_jobs(path)] == [
            "job-0001",
            "job-0003",
        ]


class TestCompaction:
    def test_drops_terminal_jobs_keeps_live_ones(self, path):
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [{"seed": 1}])
        journal.record_point("job-0001", 0, "done")
        journal.record_job("job-0001", "done")
        journal.record_submitted("job-0002", [{"seed": 2}])
        journal.record_point("job-0002", 0, "done")
        journal.close()
        assert compact_journal(path) == 1
        lines = read_lines(path)
        assert [record["type"] for record in lines] == [
            "journal_header",
            "job_submitted",
            "point_terminal",
        ]
        assert all(
            record.get("job_id", "job-0002") == "job-0002"
            for record in lines
        )
        # The live job's journaled progress survived intact.
        assert replay_journal(path)["job-0002"].point_states == {
            0: ("done", None)
        }

    def test_noop_when_nothing_is_terminal(self, path):
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [{"seed": 1}])
        journal.close()
        before = os.stat(path).st_mtime_ns
        assert compact_journal(path) == 0
        assert os.stat(path).st_mtime_ns == before

    def test_missing_journal_is_a_noop(self, tmp_path):
        # A first boot over an empty data dir must not invent files.
        target = str(tmp_path / "never" / "journal.jsonl")
        assert compact_journal(target) == 0
        assert not os.path.exists(os.path.dirname(target))

    def test_appending_after_compaction_works(self, path):
        journal = JobJournal(path)
        journal.record_submitted("job-0001", [{"seed": 1}])
        journal.record_job("job-0001", "done")
        journal.close()
        compact_journal(path)
        journal = JobJournal(path)
        journal.record_submitted("job-0002", [{"seed": 2}])
        journal.close()
        assert [job.job_id for job in recoverable_jobs(path)] == ["job-0002"]
