"""JobStore snapshot methods — the lock-once read side of the service.

These methods exist so HTTP handler threads never walk live ``Job``
objects while the worker writes them (the PL101-checked contract in
``repro.service.jobs``).  The tests pin their shapes and the
collect-then-transition behaviour of ``cancel_active``.
"""

import threading

import pytest

from repro.analysis.spec import ScenarioSpec
from repro.service.jobs import JobStore


def make_specs(count=3):
    return [
        ScenarioSpec(
            protocol="real-aa",
            n=4,
            t=1,
            known_range=8.0,
            adversary="silent",
            seed=seed,
        )
        for seed in range(count)
    ]


@pytest.fixture
def store():
    return JobStore()


@pytest.fixture
def job(store):
    return store.create(make_specs())


class TestSnapshots:
    def test_summary_is_plain_data(self, store, job):
        summary = store.summary(job)
        assert summary["job_id"] == job.job_id
        assert summary["status"] == "queued"
        assert [p["status"] for p in summary["points"]] == ["pending"] * 3
        assert summary["counts"]["pending"] == 3

    def test_index_lists_every_job(self, store, job):
        other = store.create(make_specs(1))
        listing = store.index()
        assert [entry["job_id"] for entry in listing] == [
            job.job_id,
            other.job_id,
        ]
        assert all("counts" in entry for entry in listing)

    def test_job_status_and_counts_track_transitions(self, store, job):
        store.set_job_status(job, "running")
        store.set_point_status(job, 0, "done", row={"ok": True})
        assert store.job_status(job) == "running"
        counts = store.counts(job)
        assert counts["done"] == 1 and counts["pending"] == 2

    def test_pending_indices_shrink_in_order(self, store, job):
        assert store.pending_indices(job) == [0, 1, 2]
        store.set_point_status(job, 1, "running")
        assert store.pending_indices(job) == [0, 2]

    def test_any_point_in(self, store, job):
        assert not store.any_point_in(job, ("failed", "cancelled"))
        store.set_point_status(job, 2, "failed", error="boom")
        assert store.any_point_in(job, ("failed",))

    def test_row_accessors_agree(self, store, job):
        store.set_point_status(job, 1, "done", row={"ok": True, "rounds": 7})
        assert store.point_row(job, 1) == {"ok": True, "rounds": 7}
        assert store.point_row(job, 0) is None
        assert store.result_rows(job) == [{}, {"ok": True, "rounds": 7}, {}]
        assert store.row_snapshots(job) == [(1, {"ok": True, "rounds": 7})]

    def test_point_records_cover_every_point(self, store, job):
        store.set_point_status(job, 0, "done", row={"ok": True})
        records = store.point_records(job)
        assert [r["index"] for r in records] == [0, 1, 2]
        assert records[0]["type"] == "point"
        assert records[0]["row"] == {"ok": True}
        assert records[1]["row"] is None
        assert records[0]["params"]["protocol"] == "real-aa"

    def test_set_results_path_is_visible_in_summary(self, store, job):
        store.set_results_path(job, "/tmp/results.ndjson")
        assert store.summary(job)["results_path"] == "/tmp/results.ndjson"


class TestCancelActive:
    def test_cancels_pending_and_running_only(self, store, job):
        store.set_point_status(job, 0, "done", row={"ok": True})
        store.set_point_status(job, 1, "running")
        cancelled = store.cancel_active(job)
        assert cancelled == [1, 2]
        counts = store.counts(job)
        assert counts["done"] == 1 and counts["cancelled"] == 2

    def test_cancellation_logs_point_events(self, store, job):
        before = len(store.events_since(job, 0))
        store.cancel_active(job)
        events = store.events_since(job, before)
        assert [e["event"] for e in events] == ["point_status"] * 3
        assert all(e["status"] == "cancelled" for e in events)

    def test_runs_while_lock_is_contended(self, store, job):
        # cancel_active transitions outside the (non-reentrant) store
        # lock; a reader hammering snapshot methods concurrently must
        # neither deadlock nor observe a half-written point list.
        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                summary = store.summary(job)
                seen.append(len(summary["points"]))

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            store.cancel_active(job)
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not thread.is_alive()
        assert set(seen) <= {3}
        assert store.counts(job)["cancelled"] == 3
