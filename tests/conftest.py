"""Shared fixtures and Hypothesis settings profiles for the test suite.

The reusable Hypothesis strategies live in :mod:`tests.strategies`; this
module only configures the execution environment.  Two settings profiles
are registered:

* ``dev`` (default) — small and fast, for the local red/green loop;
* ``ci`` — derandomized with more examples, so shrink-heavy property
  tests neither flake nor depend on ambient Hypothesis defaults.

Select via ``HYPOTHESIS_PROFILE=ci`` (the CI workflow does).
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.trees import LabeledTree, figure_tree

# Protocol executions are comparatively slow for hypothesis's defaults;
# both profiles keep property tests meaningful but bounded.
settings.register_profile(
    "dev",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def fig_tree() -> LabeledTree:
    """The 8-vertex tree of Figures 3/4 of the paper."""
    return figure_tree()
