"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.trees import LabeledTree, figure_tree, tree_from_pruefer

# Protocol executions are comparatively slow for hypothesis's defaults;
# register a profile that keeps property tests meaningful but bounded.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def fig_tree() -> LabeledTree:
    """The 8-vertex tree of Figures 3/4 of the paper."""
    return figure_tree()


@st.composite
def small_trees(draw, min_vertices: int = 1, max_vertices: int = 12):
    """Uniform-ish random labeled trees via Prüfer sequences."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    if n == 1:
        return LabeledTree(vertices=["v00"])
    if n == 2:
        return LabeledTree(edges=[("v00", "v01")])
    sequence = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=n - 2,
            max_size=n - 2,
        )
    )
    return tree_from_pruefer(sequence)


@st.composite
def trees_with_vertex_choices(draw, n_choices: int, min_vertices: int = 2):
    """A random tree plus *n_choices* (not necessarily distinct) vertices."""
    tree = draw(small_trees(min_vertices=min_vertices))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=tree.n_vertices - 1),
            min_size=n_choices,
            max_size=n_choices,
        )
    )
    return tree, [tree.vertices[i] for i in indices]
