"""Shared Hypothesis strategies for the whole test suite (shim).

The strategies were promoted to :mod:`repro.analysis.strategies` so the
flywheel engine (:mod:`repro.flywheel`) can draw the same scenario space
without importing test code; this module re-exports every public name so
historical ``from ..strategies import …`` test imports keep working.
"""

from __future__ import annotations

from repro.analysis.strategies import (  # noqa: F401
    BACKENDS,
    BATCH_SPEC_ADVERSARIES,
    REFERENCE_ONLY_SPEC_ADVERSARIES,
    SPEC_TREES,
    backends,
    batch_supported_adversaries,
    corruption_sets,
    draw_flywheel_spec,
    fault_plans,
    real_inputs,
    scenario_specs,
    small_trees,
    spec_stream,
    stream_digest,
    trees_with_vertex_choices,
)
