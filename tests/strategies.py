"""Shared Hypothesis strategies for the whole test suite.

Promoted out of ``conftest.py`` so that every test package (``trees``,
``authenticated``, ``engine``, …) draws trees, corruption sets, adversary
choices, and backend choices from one place instead of rolling its own.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from hypothesis import strategies as st

from repro.trees import LabeledTree, tree_from_pruefer

#: The execution backends every differential property test compares.
BACKENDS: Tuple[str, ...] = ("reference", "batch")


@st.composite
def small_trees(draw, min_vertices: int = 1, max_vertices: int = 12):
    """Uniform-ish random labeled trees via Prüfer sequences."""
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    if n == 1:
        return LabeledTree(vertices=["v00"])
    if n == 2:
        return LabeledTree(edges=[("v00", "v01")])
    sequence = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=n - 2,
            max_size=n - 2,
        )
    )
    return tree_from_pruefer(sequence)


@st.composite
def trees_with_vertex_choices(draw, n_choices: int, min_vertices: int = 2):
    """A random tree plus *n_choices* (not necessarily distinct) vertices."""
    tree = draw(small_trees(min_vertices=min_vertices))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=tree.n_vertices - 1),
            min_size=n_choices,
            max_size=n_choices,
        )
    )
    return tree, [tree.vertices[i] for i in indices]


@st.composite
def corruption_sets(
    draw, n: int, max_size: Optional[int] = None
) -> Optional[Set[int]]:
    """``None`` (the adversary's default choice) or an explicit corrupt set.

    Explicit sets are drawn from ``0..n-1`` with at most *max_size*
    members (default ``n``); the empty set is a legal, meaningful draw
    (an adversary holding no parties at all).
    """
    if draw(st.booleans()):
        return None
    bound = n if max_size is None else min(max_size, n)
    return draw(
        st.sets(st.integers(min_value=0, max_value=max(0, n - 1)), max_size=bound)
        if n
        else st.just(set())
    )


@st.composite
def batch_supported_adversaries(draw, n: int, t: int):
    """An adversary instance the batch backend can replay (or ``None``).

    Covers the full supported matrix: fault-free, :class:`NoAdversary`,
    silent, passive, partial-broadcast crashes at varying rounds, seeded
    chaos streams, and burn schedules — each over both default and
    explicit corruption sets.
    """
    from repro.adversary.base import NoAdversary, PassiveAdversary
    from repro.adversary.chaos import ChaosAdversary
    from repro.adversary.realaa_attacks import BurnScheduleAdversary
    from repro.adversary.strategies import CrashAdversary, SilentAdversary

    kind = draw(
        st.sampled_from(
            ["none", "no-adversary", "silent", "passive", "crash", "chaos", "burn"]
        )
    )
    if kind == "none":
        return None
    corrupt = draw(corruption_sets(n, max_size=max(t, 1)))
    if kind == "no-adversary":
        return NoAdversary(corrupt)
    if kind == "silent":
        return SilentAdversary(corrupt)
    if kind == "passive":
        return PassiveAdversary(corrupt)
    if kind == "chaos":
        seed = draw(st.integers(min_value=0, max_value=2**16))
        weights = None
        if draw(st.booleans()):
            weights = {
                name: draw(st.floats(min_value=0.1, max_value=4.0))
                for name in ChaosAdversary.BEHAVIOURS
            }
        return ChaosAdversary(seed=seed, weights=weights, corrupt=corrupt)
    if kind == "burn":
        schedule = draw(
            st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=4)
        )
        direction = draw(st.sampled_from(["up", "down", "alternate"]))
        reuse = draw(st.booleans())
        return BurnScheduleAdversary(
            schedule, direction=direction, reuse_burners=reuse, corrupt=corrupt
        )
    crash_round = draw(st.integers(min_value=0, max_value=30))
    partial_to = draw(st.integers(min_value=0, max_value=n))
    return CrashAdversary(crash_round, partial_to=partial_to, corrupt=corrupt)


@st.composite
def fault_plans(draw):
    """``None`` (the common case) or a seeded honest-channel fault plan.

    Faulty plans set ``allow_model_violations=True`` — the same explicit
    gate the resilience lab requires — with moderate per-message rates so
    that most runs still complete and exercise the recovery paths rather
    than degenerating into all-drop noise.
    """
    from repro.net.faults import FaultPlan

    if draw(st.booleans()):
        return None
    return FaultPlan(
        drop=draw(st.sampled_from([0.0, 0.1, 0.25])),
        duplicate=draw(st.sampled_from([0.0, 0.1, 0.2])),
        corrupt=draw(st.sampled_from([0.0, 0.1, 0.2])),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        allow_model_violations=True,
    )


def backends() -> st.SearchStrategy[str]:
    """One of the two execution backends (:data:`BACKENDS`)."""
    return st.sampled_from(BACKENDS)


#: Small tree specs (``repro.cli.parse_tree_spec`` grammar) that keep
#: spec-driven property tests fast.
SPEC_TREES: Tuple[str, ...] = ("path:4", "path:6", "star:5", "caterpillar:3x2")

#: Adversary spec strings the batch backend can replay.
BATCH_SPEC_ADVERSARIES: Tuple[str, ...] = (
    "none",
    "silent",
    "passive",
    "crash",
    "crash:2:3",
    "chaos",
    "chaos:9",
)

#: Adversary spec strings only the reference backend accepts.
REFERENCE_ONLY_SPEC_ADVERSARIES: Tuple[str, ...] = ("noise", "noise:7", "asym")


@st.composite
def scenario_specs(draw, runnable: bool = True):
    """A valid :class:`repro.analysis.spec.ScenarioSpec`.

    With ``runnable=True`` (the default) the draw is restricted so that
    ``spec.run()`` succeeds on the spec's own backend: adversaries the
    batch engine cannot replay only appear with ``backend="reference"``,
    burn schedules require ``t >= 1``, and sizes stay small enough for
    property-test budgets.
    """
    from repro.analysis.spec import ScenarioSpec

    protocol = draw(st.sampled_from(["real-aa", "path-aa", "tree-aa"]))
    backend = draw(backends())
    t = draw(st.integers(min_value=0, max_value=1))
    n = draw(st.integers(min_value=3 * t + 2, max_value=6))
    adversaries = list(BATCH_SPEC_ADVERSARIES)
    if backend == "reference" or not runnable:
        adversaries += list(REFERENCE_ONLY_SPEC_ADVERSARIES)
    if t >= 1 or not runnable:
        adversaries += ["burn", "burn-down"]
    adversary = draw(st.sampled_from(adversaries))
    corrupt: Tuple[int, ...] = ()
    if t and draw(st.booleans()):
        corrupt = (draw(st.integers(min_value=0, max_value=n - 1)),)
    return ScenarioSpec(
        protocol=protocol,
        n=n,
        t=t,
        tree=None if protocol == "real-aa" else draw(st.sampled_from(SPEC_TREES)),
        adversary=adversary,
        corrupt=corrupt,
        backend=backend,
        trace_level=draw(st.sampled_from(["full", "aggregate"])),
        t_assumed=draw(st.sampled_from([None, t])),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        known_range=8.0 if protocol == "real-aa" else None,
        project=(protocol == "path-aa" and draw(st.booleans())),
        record=draw(st.booleans()),
    )


@st.composite
def real_inputs(draw, n: int, magnitude: float = 16.0) -> List[float]:
    """``n`` finite real inputs bounded by *magnitude* in absolute value."""
    return draw(
        st.lists(
            st.floats(
                min_value=-magnitude,
                max_value=magnitude,
                allow_nan=False,
                allow_infinity=False,
                width=32,
            ),
            min_size=n,
            max_size=n,
        )
    )
