"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import (
    CLIError,
    main,
    make_adversary,
    parse_tree_spec,
    pick_inputs,
)
from repro.trees import diameter, figure_tree, tree_to_json


class TestTreeSpecs:
    def test_path(self):
        assert parse_tree_spec("path:9").n_vertices == 9

    def test_star(self):
        tree = parse_tree_spec("star:5")
        assert tree.n_vertices == 6
        assert diameter(tree) == 2

    def test_binary(self):
        assert parse_tree_spec("binary:3").n_vertices == 15

    def test_caterpillar(self):
        assert parse_tree_spec("caterpillar:4x2").n_vertices == 12

    def test_spider(self):
        assert parse_tree_spec("spider:3x4").n_vertices == 13

    def test_broom(self):
        assert parse_tree_spec("broom:3x4").n_vertices == 8

    def test_random_with_seed(self):
        assert parse_tree_spec("random:20:5") == parse_tree_spec("random:20:5")

    def test_figure(self):
        assert parse_tree_spec("figure") == figure_tree()

    def test_json_file(self, tmp_path):
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(figure_tree()))
        assert parse_tree_spec(f"@{path}") == figure_tree()

    def test_unknown_family(self):
        with pytest.raises(CLIError, match="unknown tree family"):
            parse_tree_spec("pyramid:3")

    def test_malformed(self):
        with pytest.raises(CLIError, match="malformed"):
            parse_tree_spec("path:not-a-number")


class TestAdversarySpecs:
    @pytest.mark.parametrize(
        "spec",
        ["none", "silent", "passive", "noise", "noise:7", "crash", "crash:5",
         "burn", "burn-down", "asym"],
    )
    def test_known(self, spec):
        assert make_adversary(spec, t=2) is not None

    def test_unknown(self):
        with pytest.raises(CLIError):
            make_adversary("gremlin", t=2)


class TestInputs:
    def test_random_inputs(self):
        tree = parse_tree_spec("path:5")
        inputs = pick_inputs(tree, "random:3", 7)
        assert len(inputs) == 7
        assert all(v in tree for v in inputs)

    def test_explicit_inputs(self):
        tree = parse_tree_spec("figure")
        assert pick_inputs(tree, "v1,v2,v3", 3) == ["v1", "v2", "v3"]

    def test_wrong_count(self):
        tree = parse_tree_spec("figure")
        with pytest.raises(CLIError, match="exactly"):
            pick_inputs(tree, "v1,v2", 3)

    def test_unknown_label(self):
        tree = parse_tree_spec("figure")
        with pytest.raises(CLIError, match="not a vertex"):
            pick_inputs(tree, "v1,v2,zzz", 3)


class TestCommands:
    def test_tree_aa_success_exit_code(self, capsys):
        code = main(
            [
                "tree-aa",
                "--tree",
                "random:15:2",
                "--inputs",
                "random:1",
                "--adversary",
                "silent",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1-agreement" in out and "yes" in out

    def test_real_aa(self, capsys):
        code = main(
            ["real-aa", "--inputs", "0,4,2,3", "--t", "1", "--epsilon", "0.5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "eps-agreement" in out

    def test_real_aa_malformed_inputs(self, capsys):
        code = main(["real-aa", "--inputs", "0,banana", "--t", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_batch_backend(self, capsys):
        code = main(
            [
                "sweep",
                "--kind",
                "real-aa",
                "--adversary",
                "silent",
                "--backend",
                "batch",
                "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 points" in out

    def test_sweep_batch_backend_equivocating_adversary(self, capsys):
        # The default sweep adversary ("burn") equivocates; the dense
        # batch engine replays it, so the sweep completes like any other.
        code = main(
            ["sweep", "--kind", "real-aa", "--backend", "batch", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 points" in out

    def test_sweep_batch_backend_unsupported_adversary(self, capsys):
        # Asymmetric trust is still outside the batch engine's replay
        # set; the refusal must surface as a CLI error, not a traceback.
        code = main(
            [
                "sweep",
                "--kind",
                "real-aa",
                "--adversary",
                "asym",
                "--backend",
                "batch",
                "--no-cache",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error" in err and "batch backend" in err

    def test_bounds(self, capsys):
        code = main(["bounds", "--diameter", "1000", "--n", "13", "--t", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 2 lower" in out

    def test_make_tree_json_round_trips(self, capsys):
        code = main(["make-tree", "figure", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["schema"].startswith("repro/")

    def test_make_tree_edges(self, capsys):
        code = main(["make-tree", "path:3", "--format", "edges"])
        out = capsys.readouterr().out.strip().splitlines()
        assert code == 0
        assert len(out) == 2

    def test_make_tree_dot(self, capsys):
        code = main(["make-tree", "star:3", "--format", "dot"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("graph")

    def test_chain_demo(self, capsys):
        code = main(["chain-demo", "--n", "7", "--t", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "forced gap" in out

    def test_bad_tree_spec_is_a_clean_error(self, capsys):
        code = main(
            ["tree-aa", "--tree", "dodecahedron", "--inputs", "random"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestTraceAndReport:
    WALKTHROUGH = [
        "trace",
        "--tree", "figure",
        "--inputs", "v3,v6,v5,v6,v3,v8,v8",
        "--t", "2",
    ]

    def test_trace_then_report_round_trips(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        code = main(self.WALKTHROUGH + ["--out", str(out)])
        assert code == 0
        assert "recorded 18 rounds" in capsys.readouterr().out
        assert out.exists()

        code = main(["report", str(out)])
        report = capsys.readouterr().out
        assert code == 0
        assert "tree-aa" in report
        assert "878" in report          # the walkthrough's message total
        assert "per-round metrics" in report

    def test_report_rounds_flag(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(self.WALKTHROUGH + ["--out", str(out)])
        capsys.readouterr()
        code = main(["report", str(out), "--rounds", "2"])
        assert code == 0
        assert "more rounds" in capsys.readouterr().out

    def test_trace_real_aa(self, tmp_path, capsys):
        out = tmp_path / "real.jsonl"
        code = main(
            [
                "trace", "--kind", "real-aa",
                "--inputs", "0,4,2,3",
                "--t", "1",
                "--epsilon", "0.5",
                "--out", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["report", str(out)])
        assert code == 0
        assert "real-aa" in capsys.readouterr().out

    def test_trace_tree_aa_requires_tree(self, capsys):
        code = main(["trace", "--inputs", "v1", "--out", "/dev/null"])
        assert code == 2
        assert "--tree" in capsys.readouterr().err

    def test_report_missing_file_is_a_clean_error(self, tmp_path, capsys):
        code = main(["report", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_report_rejects_foreign_schema_version(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(self.WALKTHROUGH + ["--out", str(out)])
        capsys.readouterr()
        lines = out.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = 999
        out.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        code = main(["report", str(out)])
        assert code == 2
        assert "999" in capsys.readouterr().err

    def test_report_empty_file_is_a_clean_error(self, tmp_path, capsys):
        out = tmp_path / "empty.jsonl"
        out.write_text("")
        code = main(["report", str(out)])
        assert code == 2
        assert "empty" in capsys.readouterr().err

    def test_report_truncated_file_is_a_clean_error(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(self.WALKTHROUGH + ["--out", str(out)])
        capsys.readouterr()
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[:-1]) + "\n")  # lose the footer
        code = main(["report", str(out)])
        assert code == 2
        assert "run_footer" in capsys.readouterr().err

    def test_report_gutted_round_record_is_a_clean_error(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        main(self.WALKTHROUGH + ["--out", str(out)])
        capsys.readouterr()
        lines = out.read_text().splitlines()
        record = json.loads(lines[1])
        del record["honest_messages"]
        lines[1] = json.dumps(record)
        out.write_text("\n".join(lines) + "\n")
        code = main(["report", str(out)])
        assert code == 2
        assert "honest_messages" in capsys.readouterr().err

    def test_trace_unwritable_output_is_a_clean_error(self, tmp_path, capsys):
        code = main(
            self.WALKTHROUGH + ["--out", str(tmp_path / "no" / "dir.jsonl")]
        )
        assert code == 2
        assert "cannot write" in capsys.readouterr().err


class TestAuthenticatedCommand:
    def test_auth_tree_aa_beyond_one_third(self, capsys):
        code = main(
            [
                "auth-tree-aa",
                "--tree",
                "random:15:1",
                "--n",
                "7",
                "--t",
                "3",
                "--inputs",
                "random:2",
                "--adversary",
                "passive",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "t=3 < n/2=3.5" in out

    def test_auth_tree_aa_rejects_half(self, capsys):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            main(
                [
                    "auth-tree-aa",
                    "--tree",
                    "path:5",
                    "--n",
                    "4",
                    "--t",
                    "2",
                    "--inputs",
                    "random",
                ]
            )
