"""Differential conformance suite for the batch execution backend.

Every test in this package compares :mod:`repro.engine`'s vectorized
backend against the reference message-passing simulator — identical
outputs, traces, verdicts, and error behaviour for every supported
configuration, and a loud :class:`~repro.engine.UnsupportedBackendError`
for every unsupported one.
"""
