"""Property-based differential tests: batch backend ≡ reference simulator.

Two layers of generation feed :func:`~tests.engine.conformance.differential_check`:

* Hypothesis properties drawing trees, inputs, supported adversaries
  (including the equivocating chaos/burn streams), and fault plans from
  :mod:`tests.strategies` — these shrink, so a divergence arrives
  minimised;
* a deterministic seeded sweep of 240 mixed configurations across all
  three protocols (RealAA / PathAA / TreeAA) with fault plans and
  metrics collectors in the mix, guaranteeing the ``>= 200 generated
  cases`` coverage floor regardless of the active Hypothesis profile.

Metrics conformance is exact: whenever a case attaches collectors, both
backends' per-round rows must match field for field (only the wall-clock
column is excluded).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.adversary.base import NoAdversary, PassiveAdversary
from repro.adversary.chaos import ChaosAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.adversary.strategies import CrashAdversary, SilentAdversary
from repro.core.api import run_path_aa, run_real_aa, run_tree_aa
from repro.net.faults import FaultPlan
from repro.observability import MetricsCollector
from repro.trees.generators import random_tree
from repro.trees.paths import diameter_path

from ..strategies import (
    batch_supported_adversaries,
    fault_plans,
    real_inputs,
    small_trees,
)
from .conformance import differential_check

pytest.importorskip("numpy")


@st.composite
def real_aa_cases(draw):
    """(inputs, t, epsilon, adversary, plan) for a RealAA differential run."""
    n = draw(st.integers(min_value=1, max_value=10))
    t = draw(st.integers(min_value=0, max_value=3))
    inputs = draw(real_inputs(n))
    epsilon = draw(st.sampled_from([0.25, 0.5, 1.0, 2.0]))
    adversary = draw(batch_supported_adversaries(n, t))
    plan = draw(fault_plans())
    return inputs, t, epsilon, adversary, plan


class TestRealAAConformance:
    @given(real_aa_cases())
    def test_identical_behaviour(self, case):
        inputs, t, epsilon, adversary, plan = case
        differential_check(
            run_real_aa,
            inputs=inputs,
            t=t,
            epsilon=epsilon,
            adversary=adversary,
            fault_plan=plan,
        )

    @given(real_aa_cases(), st.integers(min_value=0, max_value=3))
    def test_identical_behaviour_with_t_assumed(self, case, t_assumed):
        inputs, t, epsilon, adversary, plan = case
        differential_check(
            run_real_aa,
            inputs=inputs,
            t=t,
            epsilon=epsilon,
            adversary=adversary,
            fault_plan=plan,
            t_assumed=t_assumed,
        )

    @given(real_aa_cases())
    def test_identical_metrics_rows(self, case):
        inputs, t, epsilon, adversary, plan = case
        differential_check(
            run_real_aa,
            observer_factory=MetricsCollector,
            inputs=inputs,
            t=t,
            epsilon=epsilon,
            adversary=adversary,
            fault_plan=plan,
        )


@st.composite
def tree_aa_cases(draw):
    """(tree, inputs, t, adversary) for a TreeAA differential run."""
    tree = draw(small_trees(max_vertices=9))
    n = draw(st.integers(min_value=1, max_value=8))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=tree.n_vertices - 1),
            min_size=n,
            max_size=n,
        )
    )
    t = draw(st.integers(min_value=0, max_value=2))
    adversary = draw(batch_supported_adversaries(n, t))
    return tree, [tree.vertices[i] for i in indices], t, adversary


class TestTreeAAConformance:
    @given(tree_aa_cases())
    def test_identical_behaviour(self, case):
        tree, inputs, t, adversary = case
        differential_check(
            run_tree_aa, tree=tree, inputs=inputs, t=t, adversary=adversary
        )

    @given(tree_aa_cases(), fault_plans())
    def test_identical_metrics_rows_with_faults(self, case, plan):
        tree, inputs, t, adversary = case
        differential_check(
            run_tree_aa,
            observer_factory=lambda: MetricsCollector(tree=tree),
            tree=tree,
            inputs=inputs,
            t=t,
            adversary=adversary,
            fault_plan=plan,
        )


class TestPathAAConformance:
    @given(tree_aa_cases(), st.booleans())
    def test_identical_behaviour(self, case, project):
        tree, inputs, t, adversary = case
        path = diameter_path(tree)
        if not project:
            # Plain PathAA requires inputs on the path itself; remap the
            # drawn vertices onto it deterministically.
            vertices = list(path.vertices)
            order = {v: i for i, v in enumerate(tree.vertices)}
            inputs = [vertices[order[v] % len(vertices)] for v in inputs]
        differential_check(
            run_path_aa,
            tree=tree,
            path=path,
            inputs=inputs,
            t=t,
            adversary=adversary,
            project=project,
        )


def _seeded_adversary(rng: random.Random, n: int, t: int):
    """One supported adversary (or None) from a seeded generator."""
    corrupt = None
    if n and rng.random() < 0.5:
        corrupt = set(rng.sample(range(n), rng.randint(0, min(n, t + 1))))
    kind = rng.choice(
        ["none", "no-adversary", "silent", "passive", "crash", "chaos", "burn"]
    )
    if kind == "none":
        return None
    if kind == "no-adversary":
        return NoAdversary(corrupt)
    if kind == "silent":
        return SilentAdversary(corrupt)
    if kind == "passive":
        return PassiveAdversary(corrupt)
    if kind == "chaos":
        weights = None
        if rng.random() < 0.5:
            weights = {
                name: rng.uniform(0.1, 3.0) for name in ChaosAdversary.BEHAVIOURS
            }
        return ChaosAdversary(
            seed=rng.randint(0, 2**20), weights=weights, corrupt=corrupt
        )
    if kind == "burn":
        schedule = [rng.randint(0, 2) for _ in range(rng.randint(1, 3))]
        return BurnScheduleAdversary(
            schedule,
            corrupt=corrupt,
            direction=rng.choice(["up", "down", "alternate"]),
            reuse_burners=rng.random() < 0.5,
        )
    return CrashAdversary(
        rng.randint(0, 12), partial_to=rng.randint(0, n), corrupt=corrupt
    )


def _seeded_fault_plan(rng: random.Random):
    """``None`` most of the time, otherwise a seeded moderate-rate plan."""
    if rng.random() < 0.6:
        return None
    return FaultPlan(
        drop=rng.choice([0.0, 0.1, 0.25]),
        duplicate=rng.choice([0.0, 0.1, 0.2]),
        corrupt=rng.choice([0.0, 0.1, 0.2]),
        seed=rng.randint(0, 2**20),
        allow_model_violations=True,
    )


#: Deterministic case count — the suite's generated-coverage floor.
SEEDED_CASES = 240


@pytest.mark.parametrize("seed", range(SEEDED_CASES))
def test_seeded_differential_case(seed):
    """One deterministic mixed-protocol configuration per seed.

    Unlike the Hypothesis properties these cases never vary run to run,
    so CI replays the exact same 240 comparisons every time.
    """
    rng = random.Random(seed)
    n = rng.randint(1, 12)
    t = rng.randint(0, 4)
    adversary = _seeded_adversary(rng, n, t)
    plan = _seeded_fault_plan(rng)
    with_metrics = rng.random() < 0.5
    protocol = rng.choice(["real", "tree", "path", "projected-path"])
    t_assumed = rng.choice([None, None, rng.randint(0, 3)])
    if protocol == "real":
        inputs = [round(rng.uniform(-5.0, 5.0), 3) for _ in range(n)]
        differential_check(
            run_real_aa,
            observer_factory=MetricsCollector if with_metrics else None,
            inputs=inputs,
            t=t,
            epsilon=rng.choice([0.25, 0.5, 1.0]),
            adversary=adversary,
            fault_plan=plan,
            t_assumed=t_assumed,
        )
        return
    tree = random_tree(rng.randint(1, 9), seed=seed)
    observer_factory = (
        (lambda: MetricsCollector(tree=tree)) if with_metrics else None
    )
    inputs = [rng.choice(tree.vertices) for _ in range(n)]
    if protocol == "tree":
        differential_check(
            run_tree_aa,
            observer_factory=observer_factory,
            tree=tree,
            inputs=inputs,
            t=t,
            adversary=adversary,
            fault_plan=plan,
            t_assumed=t_assumed,
        )
        return
    path = diameter_path(tree)
    if protocol == "path":
        inputs = [rng.choice(list(path.vertices)) for _ in range(n)]
    differential_check(
        run_path_aa,
        observer_factory=observer_factory,
        tree=tree,
        path=path,
        inputs=inputs,
        t=t,
        adversary=adversary,
        fault_plan=plan,
        t_assumed=t_assumed,
        project=(protocol == "projected-path"),
    )
