"""Replay the regression corpus on the batch backend.

Every case under ``tests/corpus/`` is classified here as either
*batch-supported* (its scenario replays on the batch engine and must
reproduce the reference execution — outputs, rounds, and oracle verdict
— exactly) or *expected-unsupported* (its scenario uses a feature the
batch engine deliberately refuses, and the refusal must be the typed
:class:`~repro.engine.UnsupportedBackendError`, not a silent wrong
answer).  A new hand-written corpus case lands in neither set and fails
``test_every_case_is_classified`` until someone decides which behaviour
it gets.

Flywheel-filed cases (``repro flywheel`` divergences) classify
*themselves*: their ``flywheel`` extra records whether the minimal
spec's adversary is batch-replayable (``batch_supported``), so the
campaign can keep growing the corpus without editing this file.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import UnsupportedBackendError
from repro.resilience import iter_corpus
from repro.resilience.oracles import evaluate, violated_oracles
from repro.resilience.scenario import execute_scenario

pytest.importorskip("numpy")

CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "corpus"
)
CORPUS_CASES = {case.name: case for case in iter_corpus(CORPUS_DIR)}

#: Cases whose scenario the batch engine replays bit-identically.
BATCH_SUPPORTED = (
    "chaos-scripted-agreement",
    "crash-partial-broadcast-agreement",
    "faultplan-duplicate-storm",
    "legal-silent-stays-clean",
    "silent-over-threshold-agreement",
    "tree-silent-over-threshold",
)

#: Cases exercising features outside the batch engine's scope
#: (asynchronous delivery) — replay must refuse, loudly.
EXPECTED_UNSUPPORTED = (
    "async-split-noise-stays-clean",
)


def _flywheel_classification(case):
    """``True``/``False`` from a flywheel-filed case's own metadata."""
    flywheel = case.extras.get("flywheel")
    if isinstance(flywheel, dict) and "batch_supported" in flywheel:
        return bool(flywheel["batch_supported"])
    return None


FLYWHEEL_SUPPORTED = tuple(
    sorted(
        name
        for name, case in CORPUS_CASES.items()
        if _flywheel_classification(case) is True
    )
)
FLYWHEEL_UNSUPPORTED = tuple(
    sorted(
        name
        for name, case in CORPUS_CASES.items()
        if _flywheel_classification(case) is False
    )
)

ALL_SUPPORTED = BATCH_SUPPORTED + FLYWHEEL_SUPPORTED


def test_every_case_is_classified():
    classified = (
        set(BATCH_SUPPORTED)
        | set(EXPECTED_UNSUPPORTED)
        | set(FLYWHEEL_SUPPORTED)
        | set(FLYWHEEL_UNSUPPORTED)
    )
    assert set(CORPUS_CASES) == classified
    assert not set(ALL_SUPPORTED) & set(EXPECTED_UNSUPPORTED)


@pytest.mark.parametrize("name", ALL_SUPPORTED)
def test_supported_case_replays_identically(name):
    case = CORPUS_CASES[name]
    reference = execute_scenario(case.scenario)
    batch = execute_scenario(case.scenario, backend="batch")
    assert batch.honest_inputs == reference.honest_inputs
    assert batch.honest_outputs == reference.honest_outputs
    assert batch.rounds == reference.rounds
    assert batch.round_limit == reference.round_limit
    assert batch.completed == reference.completed
    assert batch.error == reference.error
    assert batch.fault_counts == reference.fault_counts
    assert batch.chaos_log == reference.chaos_log
    assert violated_oracles(evaluate(batch)) == violated_oracles(
        evaluate(reference)
    )


@pytest.mark.parametrize("name", ALL_SUPPORTED)
def test_supported_case_verdict_matches_recording(name):
    case = CORPUS_CASES[name]
    result = execute_scenario(case.scenario, backend="batch")
    assert tuple(violated_oracles(evaluate(result))) == tuple(
        sorted(case.expected_violations)
    )


@pytest.mark.parametrize(
    "name", EXPECTED_UNSUPPORTED + FLYWHEEL_UNSUPPORTED
)
def test_unsupported_case_refuses_loudly(name):
    case = CORPUS_CASES[name]
    with pytest.raises(UnsupportedBackendError):
        execute_scenario(case.scenario, backend="batch")
