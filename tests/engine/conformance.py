"""Shared helpers for the backend conformance tests.

The heart of the suite is :func:`differential_check`: run the same
protocol call on the reference simulator and the batch engine and demand
*identical* observable behaviour — outputs, honest/corrupted partitions,
the full execution trace, AA verdicts, and (for error paths) the
exception type and message.  Any divergence is rendered with both sides'
summaries so a failing case is diagnosable from the pytest output alone.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple


def trace_summary(trace: Any) -> Tuple[Any, ...]:
    """Every counter the trace exposes, as a comparable tuple."""
    return (
        trace.rounds_executed,
        trace.honest_message_count,
        trace.byzantine_message_count,
        trace.honest_payload_units,
        trace.byzantine_payload_units,
        trace.faults_dropped,
        trace.faults_duplicated,
        trace.faults_corrupted,
        tuple(trace.per_round_messages),
        tuple(sorted(trace.corruption_rounds.items())),
    )


def metric_rows(collector: Any) -> list:
    """A collector's rows as dicts, minus the nondeterministic wall clock."""
    rows = []
    for row in collector.rounds:
        as_dict = dict(row.__dict__)
        as_dict.pop("wall_seconds")
        rows.append(as_dict)
    return rows


def outcome_summary(outcome: Any) -> Dict[str, Any]:
    """The full observable state of a protocol outcome, for equality."""
    summary: Dict[str, Any] = {
        "outputs": outcome.execution.outputs,
        "honest": outcome.execution.honest,
        "corrupted": outcome.execution.corrupted,
        "trace": trace_summary(outcome.execution.trace),
        "terminated": outcome.terminated,
        "valid": outcome.valid,
        "agreement": outcome.agreement,
        "rounds": outcome.rounds,
    }
    for field in ("output_spread", "measured_rounds", "output_diameter"):
        if hasattr(outcome, field):
            summary[field] = getattr(outcome, field)
    return summary


def run_one(
    call: Callable[..., Any], kwargs: Dict[str, Any], backend: str
) -> Tuple[str, Any]:
    """``("ok", summary)`` or ``("error", type name, message)``.

    Exceptions are part of the conformance contract: both backends must
    reject an illegal configuration with the *same* error.
    """
    try:
        outcome = call(**kwargs, backend=backend)
    except Exception as error:  # noqa: BLE001 - the type is the assertion
        return ("error", type(error).__name__, str(error))
    return ("ok", outcome_summary(outcome))


def differential_check(
    call: Callable[..., Any],
    observer_factory: Any = None,
    **kwargs: Any,
) -> Tuple[str, Any]:
    """Assert reference and batch behave identically; return the verdict.

    ``observer_factory`` (when given) builds one fresh observer *per
    backend* — a shared instance would accumulate both runs' rows — and
    the two collectors' metric rows are compared exactly, excluding only
    the wall-clock column.
    """
    observers: Dict[str, Any] = {}

    def run(backend: str) -> Tuple[str, Any]:
        run_kwargs = dict(kwargs)
        if observer_factory is not None:
            observers[backend] = run_kwargs["observer"] = observer_factory()
        return run_one(call, run_kwargs, backend)

    reference = run("reference")
    batch = run("batch")
    assert reference == batch, (
        f"backend divergence for {call.__name__}:\n"
        f"  reference: {reference!r}\n"
        f"  batch:     {batch!r}"
    )
    if observer_factory is not None:
        reference_rows = metric_rows(observers["reference"])
        batch_rows = metric_rows(observers["batch"])
        assert reference_rows == batch_rows, (
            f"metrics divergence for {call.__name__}:\n"
            f"  reference: {reference_rows!r}\n"
            f"  batch:     {batch_rows!r}"
        )
    return reference
