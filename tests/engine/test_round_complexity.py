"""Property-based round-complexity bound for TreeAA, on both backends.

The paper's headline claim is round complexity ``O(log |V| / log log
|V|)`` for approximate agreement on a tree with ``|V|`` vertices.  This
test pins an *empirical constant* for that asymptotic in the small-tree
regime (``n <= 10``, ``t <= 3``, ``|V| <= 12``): every execution — on the
reference simulator and on the batch engine alike — must finish within
``ceil(C * log2|V| / max(1, log2 log2 |V|))`` rounds for ``C = 16``.

``C`` was calibrated by fuzzing 400 seeded configurations across tree
families and supported adversaries; the worst observed ratio was 7.93,
so the bound carries ~2x headroom against run-to-run variation while
still catching any change that breaks the log/loglog shape (a linear
regression would blow through it immediately).  The constant and regime
are recorded in EXPERIMENTS.md (experiment S1 notes).
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.api import run_tree_aa
from repro.lowerbound import EMPIRICAL_ROUND_CONSTANT as ROUND_BOUND_CONSTANT
from repro.lowerbound import empirical_tree_round_bound as round_bound
from repro.net.network import ByzantineModelError

from ..strategies import BACKENDS, batch_supported_adversaries, small_trees

pytest.importorskip("numpy")

# The bound itself now lives in repro.lowerbound (the flywheel's
# round-bound oracle enforces the same budget on every campaign point);
# this test keeps pinning it property-style on both backends.
assert ROUND_BOUND_CONSTANT == 16


@st.composite
def bounded_instances(draw):
    """(tree, inputs, t, adversary, backend) inside the calibrated regime."""
    tree = draw(small_trees(max_vertices=12))
    n = draw(st.integers(min_value=1, max_value=10))
    indices = draw(
        st.lists(
            st.integers(min_value=0, max_value=tree.n_vertices - 1),
            min_size=n,
            max_size=n,
        )
    )
    t = draw(st.integers(min_value=0, max_value=3))
    adversary = draw(batch_supported_adversaries(n, t))
    backend = draw(st.sampled_from(BACKENDS))
    return tree, [tree.vertices[i] for i in indices], t, adversary, backend


@given(bounded_instances())
def test_rounds_within_log_over_loglog(case):
    tree, inputs, t, adversary, backend = case
    try:
        outcome = run_tree_aa(tree, inputs, t, adversary=adversary, backend=backend)
    except (ValueError, ByzantineModelError):
        return  # illegal configuration (resilience / corruption budget)
    assert outcome.rounds <= round_bound(tree.n_vertices), (
        f"|V|={tree.n_vertices}: {outcome.rounds} rounds exceeds "
        f"bound {round_bound(tree.n_vertices)} on backend {backend!r}"
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_bound_is_not_vacuous(backend):
    # A concrete worst-ish case from the calibration fuzz: the bound must
    # be within an order of magnitude of a real execution, not infinity.
    from repro.trees.generators import random_tree

    tree = random_tree(8, seed=44)
    inputs = [tree.vertices[i % tree.n_vertices] for i in range(9)]
    outcome = run_tree_aa(tree, inputs, 2, backend=backend)
    assert 0 < outcome.rounds <= round_bound(8)
    assert round_bound(8) <= 10 * outcome.rounds
