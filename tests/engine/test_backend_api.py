"""Backend selection, refusal behaviour, and sweep-cache identity.

The batch engine's contract has three edges worth pinning beyond the
differential properties:

* ``backend=`` is a closed enum — typos raise ``ValueError`` before any
  execution starts;
* every feature the vectorized engine cannot express (observers, fault
  plans, equivocating adversaries) raises the typed
  :class:`~repro.engine.UnsupportedBackendError` instead of silently
  running wrong;
* a sweep row computed by one engine is never served from the result
  cache to the other (the regression this PR's cache-key fix guards).
"""

from __future__ import annotations

import pytest

from repro.adversary.base import Adversary, NoAdversary
from repro.adversary.chaos import ChaosAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis.parallel import SweepCache, run_grid
from repro.core.api import run_path_aa, run_real_aa, run_tree_aa
from repro.engine import (
    BatchAdversarySpec,
    UnsupportedBackendError,
    resolve_batch_spec,
)
from repro.net.faults import FaultPlan
from repro.observability import MetricsCollector
from repro.trees.labeled_tree import LabeledTree
from repro.trees.paths import diameter_path

pytest.importorskip("numpy")

INPUTS = [0.0, 1.0, 2.0, 3.0, 4.0]


def small_tree() -> LabeledTree:
    return LabeledTree.from_parent_map({"b": "a", "c": "a", "d": "b"})


class TestBackendSelection:
    @pytest.mark.parametrize("backend", ["Batch", "numpy", "", "ref"])
    def test_unknown_backend_is_a_value_error(self, backend):
        with pytest.raises(ValueError, match="unknown backend"):
            run_real_aa(INPUTS, 1, epsilon=1.0, backend=backend)

    def test_unknown_backend_rejected_by_every_entry_point(self):
        tree = small_tree()
        with pytest.raises(ValueError, match="unknown backend"):
            run_tree_aa(tree, ["a"] * 4, 1, backend="turbo")
        with pytest.raises(ValueError, match="unknown backend"):
            run_path_aa(
                tree, diameter_path(tree), ["c", "c", "d", "d"], 1, backend="turbo"
            )

    def test_reference_is_the_default(self):
        reference = run_real_aa(INPUTS, 1, epsilon=1.0)
        explicit = run_real_aa(INPUTS, 1, epsilon=1.0, backend="reference")
        assert reference.execution.outputs == explicit.execution.outputs


class TestUnsupportedFeatures:
    def test_equivocating_adversary_refuses(self):
        with pytest.raises(UnsupportedBackendError, match="BurnScheduleAdversary"):
            run_real_aa(
                INPUTS,
                1,
                epsilon=1.0,
                adversary=BurnScheduleAdversary([1]),
                backend="batch",
            )

    def test_chaos_adversary_refuses(self):
        with pytest.raises(UnsupportedBackendError, match="ChaosAdversary"):
            run_real_aa(
                INPUTS,
                1,
                epsilon=1.0,
                adversary=ChaosAdversary(seed=7),
                backend="batch",
            )

    def test_observer_refuses(self):
        with pytest.raises(UnsupportedBackendError, match="observer"):
            run_real_aa(
                INPUTS,
                1,
                epsilon=1.0,
                observer=MetricsCollector(),
                backend="batch",
            )

    def test_fault_plan_refuses(self):
        with pytest.raises(UnsupportedBackendError, match="fault plan"):
            run_real_aa(
                INPUTS,
                1,
                epsilon=1.0,
                fault_plan=FaultPlan(),
                backend="batch",
            )

    def test_unknown_adversary_has_no_spec(self):
        class Custom(Adversary):
            def byzantine_messages(self, view):
                return {}

        with pytest.raises(UnsupportedBackendError, match="Custom"):
            resolve_batch_spec(Custom())

    def test_subclass_does_not_inherit_the_parent_spec(self):
        # A subclass may override behaviour arbitrarily; only exact types
        # the engine knows get replayed.
        class Widened(NoAdversary):
            pass

        with pytest.raises(UnsupportedBackendError, match="Widened"):
            resolve_batch_spec(Widened(None))

    def test_supported_adversary_resolves(self):
        # NoAdversary never actually corrupts anyone (its
        # initial_corruptions is empty even when a set was requested), and
        # its spec says exactly that.
        spec = resolve_batch_spec(NoAdversary({1, 2}))
        assert isinstance(spec, BatchAdversarySpec)
        assert spec.kind == "none"
        assert spec.corrupted == frozenset()


class TestSweepCacheBackendIdentity:
    GRID = [{"n": 5, "t": 1, "spread": 8.0, "epsilon": 1.0, "seed": 3}]

    def test_key_records_the_backend(self):
        reference = SweepCache.key("s", "realaa-point", self.GRID[0], 3, "v")
        batch = SweepCache.key(
            "s", "realaa-point", self.GRID[0], 3, "v", backend="batch"
        )
        assert reference["backend"] == "reference"
        assert batch["backend"] == "batch"
        assert {k: v for k, v in reference.items() if k != "backend"} == {
            k: v for k, v in batch.items() if k != "backend"
        }

    def test_cached_reference_row_not_served_to_batch(self, tmp_path):
        cache_dir = str(tmp_path)
        first = run_grid(
            "cache-identity", "realaa-point", self.GRID, cache_dir=cache_dir
        )
        assert (first.cache_hits, first.cache_misses) == (0, 1)

        # Same grid on the batch backend: the reference row must NOT hit.
        batch = run_grid(
            "cache-identity",
            "realaa-point",
            self.GRID,
            cache_dir=cache_dir,
            backend="batch",
        )
        assert (batch.cache_hits, batch.cache_misses) == (0, 1)
        assert batch.rows == first.rows  # the engines agree; the cache rows differ

        # Re-running each backend now hits its own row.
        assert run_grid(
            "cache-identity", "realaa-point", self.GRID, cache_dir=cache_dir
        ).cache_hits == 1
        assert (
            run_grid(
                "cache-identity",
                "realaa-point",
                self.GRID,
                cache_dir=cache_dir,
                backend="batch",
            ).cache_hits
            == 1
        )
