"""Backend selection, refusal behaviour, and sweep-cache identity.

The batch engine's contract has three edges worth pinning beyond the
differential properties:

* ``backend=`` is a closed enum — typos raise ``ValueError`` before any
  execution starts;
* the features the engine *does* replay — metrics collectors, fault
  plans, and the equivocating chaos/burn adversaries — match the
  reference byte for byte, while everything it cannot express
  (transcript recorders, custom ``estimate_fn``, adversary subclasses)
  raises the typed :class:`~repro.engine.UnsupportedBackendError`
  instead of silently running wrong;
* a sweep row computed by one engine is never served from the result
  cache to the other (the regression this PR's cache-key fix guards).
"""

from __future__ import annotations

import pytest

from repro.adversary.base import Adversary, NoAdversary
from repro.adversary.chaos import ChaosAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis.parallel import SweepCache, run_grid
from repro.core.api import run_path_aa, run_real_aa, run_tree_aa
from repro.engine import (
    BatchAdversarySpec,
    UnsupportedBackendError,
    resolve_batch_spec,
)
from repro.net.faults import FaultPlan
from repro.net.trace import TranscriptRecorder
from repro.observability import MetricsCollector
from repro.trees.labeled_tree import LabeledTree
from repro.trees.paths import diameter_path

pytest.importorskip("numpy")

INPUTS = [0.0, 1.0, 2.0, 3.0, 4.0]


def small_tree() -> LabeledTree:
    return LabeledTree.from_parent_map({"b": "a", "c": "a", "d": "b"})


def metric_rows(collector: MetricsCollector):
    """Collector rows as dicts, minus the nondeterministic wall clock."""
    rows = []
    for row in collector.rounds:
        as_dict = dict(row.__dict__)
        as_dict.pop("wall_seconds")
        rows.append(as_dict)
    return rows


class TestBackendSelection:
    @pytest.mark.parametrize("backend", ["Batch", "numpy", "", "ref"])
    def test_unknown_backend_is_a_value_error(self, backend):
        with pytest.raises(ValueError, match="unknown backend"):
            run_real_aa(INPUTS, 1, epsilon=1.0, backend=backend)

    def test_unknown_backend_rejected_by_every_entry_point(self):
        tree = small_tree()
        with pytest.raises(ValueError, match="unknown backend"):
            run_tree_aa(tree, ["a"] * 4, 1, backend="turbo")
        with pytest.raises(ValueError, match="unknown backend"):
            run_path_aa(
                tree, diameter_path(tree), ["c", "c", "d", "d"], 1, backend="turbo"
            )

    def test_reference_is_the_default(self):
        reference = run_real_aa(INPUTS, 1, epsilon=1.0)
        explicit = run_real_aa(INPUTS, 1, epsilon=1.0, backend="reference")
        assert reference.execution.outputs == explicit.execution.outputs


class TestReplayedFeatures:
    """Features the batch backend used to refuse and now replays.

    Each test is a miniature differential check: the lifted feature must
    produce reference-identical observable state, not merely run.  The
    broad sweeps live in ``test_conformance.py``; these pin the specific
    configurations whose refusals this PR removed.
    """

    def test_equivocating_adversary_replays(self):
        results = {
            backend: run_real_aa(
                INPUTS,
                1,
                epsilon=1.0,
                adversary=BurnScheduleAdversary([1, 1], direction="alternate"),
                backend=backend,
            )
            for backend in ("reference", "batch")
        }
        assert (
            results["batch"].honest_outputs == results["reference"].honest_outputs
        )
        assert results["batch"].rounds == results["reference"].rounds

    def test_chaos_adversary_replays_with_log_parity(self):
        adversaries = {b: ChaosAdversary(seed=7) for b in ("reference", "batch")}
        results = {
            backend: run_real_aa(
                INPUTS,
                1,
                epsilon=1.0,
                adversary=adversaries[backend],
                backend=backend,
            )
            for backend in ("reference", "batch")
        }
        assert (
            results["batch"].honest_outputs == results["reference"].honest_outputs
        )
        # The caller's adversary object carries the behaviour log either way.
        assert adversaries["batch"].log == adversaries["reference"].log

    def test_metrics_collector_replays(self):
        collectors = {b: MetricsCollector() for b in ("reference", "batch")}
        for backend, collector in collectors.items():
            run_real_aa(
                INPUTS, 1, epsilon=1.0, observer=collector, backend=backend
            )
        assert metric_rows(collectors["batch"]) == metric_rows(
            collectors["reference"]
        )

    def test_fault_plan_replays(self):
        plans = {
            b: FaultPlan(
                drop=0.2,
                duplicate=0.15,
                corrupt=0.15,
                seed=5,
                allow_model_violations=True,
            )
            for b in ("reference", "batch")
        }
        results = {
            backend: run_real_aa(
                INPUTS, 1, epsilon=1.0, fault_plan=plans[backend], backend=backend
            )
            for backend in ("reference", "batch")
        }
        assert (
            results["batch"].honest_outputs == results["reference"].honest_outputs
        )
        ref_trace = results["reference"].execution.trace
        bat_trace = results["batch"].execution.trace
        assert bat_trace.faults_dropped == ref_trace.faults_dropped
        assert bat_trace.faults_duplicated == ref_trace.faults_duplicated
        assert bat_trace.faults_corrupted == ref_trace.faults_corrupted


class TestUnsupportedFeatures:
    def test_transcript_recorder_refuses(self):
        with pytest.raises(UnsupportedBackendError, match="TranscriptRecorder"):
            run_real_aa(
                INPUTS,
                1,
                epsilon=1.0,
                observer=TranscriptRecorder(),
                backend="batch",
            )

    def test_collector_subclass_refuses(self):
        # A subclass may override row bookkeeping; only the exact class
        # is known to be reproducible from batch reductions.
        class Widened(MetricsCollector):
            pass

        with pytest.raises(UnsupportedBackendError, match="Widened"):
            run_real_aa(
                INPUTS, 1, epsilon=1.0, observer=Widened(), backend="batch"
            )

    def test_custom_estimate_fn_refuses(self):
        collector = MetricsCollector(estimate_fn=lambda party: None)
        with pytest.raises(UnsupportedBackendError, match="estimate_fn"):
            run_real_aa(
                INPUTS, 1, epsilon=1.0, observer=collector, backend="batch"
            )

    def test_tree_collector_refuses_on_real_aa(self):
        # Vertex-estimate watching is replayable for the tree protocols
        # but not for RealAA, whose parties expose float estimates.
        collector = MetricsCollector(tree=small_tree())
        with pytest.raises(UnsupportedBackendError, match="tree"):
            run_real_aa(
                INPUTS, 1, epsilon=1.0, observer=collector, backend="batch"
            )

    def test_chaos_subclass_refuses(self):
        class Nastier(ChaosAdversary):
            pass

        with pytest.raises(UnsupportedBackendError, match="Nastier"):
            resolve_batch_spec(Nastier(seed=1))

    def test_burn_subclass_refuses(self):
        class Hotter(BurnScheduleAdversary):
            pass

        with pytest.raises(UnsupportedBackendError, match="Hotter"):
            resolve_batch_spec(Hotter([1]))

    def test_unknown_adversary_has_no_spec(self):
        class Custom(Adversary):
            def byzantine_messages(self, view):
                return {}

        with pytest.raises(UnsupportedBackendError, match="Custom"):
            resolve_batch_spec(Custom())

    def test_subclass_does_not_inherit_the_parent_spec(self):
        # A subclass may override behaviour arbitrarily; only exact types
        # the engine knows get replayed.
        class Widened(NoAdversary):
            pass

        with pytest.raises(UnsupportedBackendError, match="Widened"):
            resolve_batch_spec(Widened(None))

    def test_supported_adversary_resolves(self):
        # NoAdversary never actually corrupts anyone (its
        # initial_corruptions is empty even when a set was requested), and
        # its spec says exactly that.
        spec = resolve_batch_spec(NoAdversary({1, 2}))
        assert isinstance(spec, BatchAdversarySpec)
        assert spec.kind == "none"
        assert spec.corrupted == frozenset()


class TestSweepCacheBackendIdentity:
    GRID = [{"n": 5, "t": 1, "spread": 8.0, "epsilon": 1.0, "seed": 3}]

    def test_key_records_the_backend(self):
        reference = SweepCache.key("s", "realaa-point", self.GRID[0], 3, "v")
        batch = SweepCache.key(
            "s", "realaa-point", self.GRID[0], 3, "v", backend="batch"
        )
        assert reference["backend"] == "reference"
        assert batch["backend"] == "batch"
        assert {k: v for k, v in reference.items() if k != "backend"} == {
            k: v for k, v in batch.items() if k != "backend"
        }

    def test_cached_reference_row_not_served_to_batch(self, tmp_path):
        cache_dir = str(tmp_path)
        first = run_grid(
            "cache-identity", "realaa-point", self.GRID, cache_dir=cache_dir
        )
        assert (first.cache_hits, first.cache_misses) == (0, 1)

        # Same grid on the batch backend: the reference row must NOT hit.
        batch = run_grid(
            "cache-identity",
            "realaa-point",
            self.GRID,
            cache_dir=cache_dir,
            backend="batch",
        )
        assert (batch.cache_hits, batch.cache_misses) == (0, 1)
        assert batch.rows == first.rows  # the engines agree; the cache rows differ

        # Re-running each backend now hits its own row.
        assert run_grid(
            "cache-identity", "realaa-point", self.GRID, cache_dir=cache_dir
        ).cache_hits == 1
        assert (
            run_grid(
                "cache-identity",
                "realaa-point",
                self.GRID,
                cache_dir=cache_dir,
                backend="batch",
            ).cache_hits
            == 1
        )
