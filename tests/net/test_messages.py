"""Tests for message envelopes and inbox grouping."""

from repro.net import Message, broadcast, deliver


class TestMessage:
    def test_fields(self):
        m = Message(sender=1, recipient=2, round=0, payload="x")
        assert (m.sender, m.recipient, m.round, m.payload) == (1, 2, 0, "x")

    def test_repr_is_compact(self):
        m = Message(1, 2, 3, "hello")
        assert "1->2" in repr(m)
        assert "r3" in repr(m)

    def test_frozen(self):
        import pytest

        m = Message(1, 2, 0, None)
        with pytest.raises(Exception):
            m.sender = 9  # type: ignore[misc]


class TestDeliver:
    def test_groups_by_recipient(self):
        messages = [
            Message(0, 1, 0, "a"),
            Message(2, 1, 0, "b"),
            Message(0, 2, 0, "c"),
        ]
        inboxes = deliver(messages, n=3)
        assert inboxes[1] == {0: "a", 2: "b"}
        assert inboxes[2] == {0: "c"}
        assert inboxes[0] == {}

    def test_every_party_gets_an_inbox(self):
        inboxes = deliver([], n=4)
        assert sorted(inboxes) == [0, 1, 2, 3]

    def test_last_payload_wins_on_double_send(self):
        messages = [Message(0, 1, 0, "first"), Message(0, 1, 0, "second")]
        assert deliver(messages, n=2)[1] == {0: "second"}

    def test_out_of_range_recipient_dropped(self):
        messages = [Message(0, 99, 0, "lost"), Message(0, -1, 0, "lost")]
        inboxes = deliver(messages, n=2)
        assert all(not inbox for inbox in inboxes.values())

    def test_sender_key_is_authenticated_identity(self):
        """The inbox is keyed by the Message.sender field the *network*
        stamped — the structural form of authenticated channels."""
        messages = [Message(3, 0, 0, {"claims_to_be": 1})]
        inboxes = deliver(messages, n=4)
        assert 3 in inboxes[0] and 1 not in inboxes[0]


class TestBroadcast:
    def test_reaches_everyone_including_self(self):
        outbox = broadcast("p", n=3)
        assert outbox == {0: "p", 1: "p", 2: "p"}

    def test_empty_network(self):
        assert broadcast("p", n=0) == {}
