"""Tests for transcript recording and invariant monitoring."""

import pytest

from repro.adversary import SilentAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.net import (
    InvariantMonitor,
    InvariantViolation,
    MultiObserver,
    TranscriptRecorder,
    run_protocol,
)
from repro.protocols import RealAAParty

N, T = 7, 2
INPUTS = [0.0, 10.0, 5.0, 2.0, 8.0, 0.0, 0.0]


def run_with_observer(observer, adversary=None, iterations=2):
    return run_protocol(
        N,
        T,
        lambda pid: RealAAParty(pid, N, T, INPUTS[pid], iterations=iterations),
        adversary=adversary,
        observer=observer,
    )


class TestTranscriptRecorder:
    def test_records_every_round(self):
        recorder = TranscriptRecorder()
        result = run_with_observer(recorder, adversary=SilentAdversary())
        assert len(recorder.rounds) == result.trace.rounds_executed

    def test_honest_traffic_recorded(self):
        recorder = TranscriptRecorder()
        run_with_observer(recorder, adversary=SilentAdversary())
        first = recorder.rounds[0]
        assert set(first.honest_messages) == {0, 1, 2, 3, 4}
        # round 0 payloads are value announcements
        payload = first.honest_messages[0][0]
        assert payload[0] == "val"

    def test_byzantine_traffic_counted(self):
        recorder = TranscriptRecorder()
        run_with_observer(recorder, adversary=BurnScheduleAdversary([1, 1]))
        assert recorder.byzantine_message_total > 0

    def test_silent_adversary_sends_nothing(self):
        recorder = TranscriptRecorder()
        run_with_observer(recorder, adversary=SilentAdversary())
        assert recorder.byzantine_message_total == 0

    def test_render(self):
        recorder = TranscriptRecorder()
        run_with_observer(recorder, adversary=BurnScheduleAdversary([1, 1]))
        text = recorder.render()
        assert "round 0" in text
        assert "(byz)" in text
        assert "<" in text  # long dict payloads abbreviated

    def test_render_limits_rounds(self):
        recorder = TranscriptRecorder()
        run_with_observer(recorder, adversary=SilentAdversary())
        text = recorder.render(max_rounds=1)
        assert "round 0" in text and "round 1" not in text

    def test_corrupted_set_in_records(self):
        recorder = TranscriptRecorder()
        run_with_observer(recorder, adversary=SilentAdversary())
        assert recorder.rounds[0].corrupted == (5, 6)


class TestInvariantMonitor:
    def test_holding_invariant_checks_every_round(self):
        monitor = InvariantMonitor(
            {
                "values-in-envelope": lambda r, parties, corrupted: all(
                    0.0 <= parties[p].value <= 10.0
                    for p in range(N)
                    if p not in corrupted
                )
            }
        )
        result = run_with_observer(monitor, adversary=BurnScheduleAdversary([1, 1]))
        assert monitor.checked_rounds == result.trace.rounds_executed

    def test_violation_reports_round(self):
        monitor = InvariantMonitor(
            {"fails-in-round-3": lambda r, parties, corrupted: r < 3}
        )
        with pytest.raises(InvariantViolation) as info:
            run_with_observer(monitor, adversary=SilentAdversary())
        assert info.value.round_index == 3
        assert info.value.name == "fails-in-round-3"

    def test_range_never_grows_invariant(self):
        """A real protocol invariant, monitored live: the honest value
        envelope never widens."""
        state = {"low": min(INPUTS[:5]), "high": max(INPUTS[:5])}

        def envelope(r, parties, corrupted):
            values = [
                parties[p].value for p in range(N) if p not in corrupted
            ]
            ok = min(values) >= state["low"] - 1e-12 and max(values) <= state[
                "high"
            ] + 1e-12
            state["low"], state["high"] = min(values), max(values)
            return ok

        monitor = InvariantMonitor({"shrinking-envelope": envelope})
        run_with_observer(
            monitor, adversary=BurnScheduleAdversary([1, 1]), iterations=4
        )
        assert monitor.checked_rounds == 12


class TestMultiObserver:
    def test_fans_out_to_every_observer(self):
        first = TranscriptRecorder()
        second = TranscriptRecorder()
        monitor = InvariantMonitor(
            {"always": lambda r, parties, corrupted: True}
        )
        result = run_with_observer(
            MultiObserver(first, second, monitor),
            adversary=BurnScheduleAdversary([1, 1]),
        )
        executed = result.trace.rounds_executed
        assert len(first.rounds) == executed
        assert len(second.rounds) == executed
        assert monitor.checked_rounds == executed
        assert first.byzantine_message_total == second.byzantine_message_total

    def test_observers_called_in_order(self):
        calls = []

        class Tagger(TranscriptRecorder):
            def __init__(self, tag):
                super().__init__()
                self.tag = tag

            def on_round(self, *args, **kwargs):
                calls.append(self.tag)
                super().on_round(*args, **kwargs)

        run_with_observer(
            MultiObserver(Tagger("a"), Tagger("b")),
            adversary=SilentAdversary(),
        )
        assert calls[:2] == ["a", "b"]
        assert calls == ["a", "b"] * (len(calls) // 2)

    def test_violation_inside_fan_out_propagates(self):
        monitor = InvariantMonitor(
            {"fails-immediately": lambda r, parties, corrupted: False}
        )
        with pytest.raises(InvariantViolation):
            run_with_observer(
                MultiObserver(TranscriptRecorder(), monitor),
                adversary=SilentAdversary(),
            )

    def test_empty_multi_observer_is_a_no_op(self):
        result = run_with_observer(MultiObserver(), adversary=SilentAdversary())
        assert result.trace.rounds_executed > 0
