"""Tests for the protocol-party interface and phased composition."""

import pytest

from repro.net import PhasedParty, ProtocolParty, SilentParty
from repro.net.messages import broadcast


class CountingParty(ProtocolParty):
    """Broadcasts its round number for a fixed number of rounds; outputs the
    list of rounds in which it received something."""

    def __init__(self, pid, n, t, rounds, label="c"):
        super().__init__(pid, n, t)
        self._rounds = rounds
        self.label = label
        self.seen = []
        self.sent = []

    @property
    def duration(self):
        return self._rounds

    def messages_for_round(self, round_index):
        self.sent.append(round_index)
        return broadcast((self.label, round_index), self.n)

    def receive_round(self, round_index, inbox):
        self.seen.append((round_index, dict(inbox)))
        if round_index == self._rounds - 1:
            self.output = (self.label, [r for r, _ in self.seen])


class TestProtocolParty:
    def test_pid_validation(self):
        with pytest.raises(ValueError):
            CountingParty(5, 3, 0, rounds=1)
        with pytest.raises(ValueError):
            CountingParty(0, 0, 0, rounds=1)
        with pytest.raises(ValueError):
            CountingParty(0, 3, -1, rounds=1)

    def test_finished(self):
        party = CountingParty(0, 1, 0, rounds=2)
        assert not party.finished(1)
        assert party.finished(2)

    def test_silent_party(self):
        party = SilentParty(0, 3, 1)
        assert party.duration == 0
        assert party.messages_for_round(0) == {}
        party.receive_round(0, {})
        assert party.output is None


class TestPhasedParty:
    def _run_alone(self, party):
        """Drive a single party through its rounds with empty inboxes
        reflecting its own broadcast."""
        for r in range(party.duration):
            out = party.messages_for_round(r)
            inbox = {party.pid: out[party.pid]} if party.pid in out else {}
            party.receive_round(r, inbox)

    def test_requires_phases(self):
        with pytest.raises(ValueError):
            PhasedParty(0, 1, 0, phases=[])

    def test_rejects_zero_duration_phase(self):
        with pytest.raises(ValueError):
            PhasedParty(
                0, 1, 0, phases=[(0, lambda _: CountingParty(0, 1, 0, 1))]
            )

    def test_rejects_overlong_subparty(self):
        with pytest.raises(ValueError, match="rounds"):
            PhasedParty(
                0, 1, 0, phases=[(1, lambda _: CountingParty(0, 1, 0, 5))]
            )

    def test_total_duration(self):
        party = PhasedParty(
            0,
            1,
            0,
            phases=[
                (2, lambda _: CountingParty(0, 1, 0, 2, "a")),
                (3, lambda _: CountingParty(0, 1, 0, 3, "b")),
            ],
        )
        assert party.duration == 5

    def test_phase_outputs_chain(self):
        received = []

        def make_second(previous):
            received.append(previous)
            return CountingParty(0, 1, 0, 1, "b")

        party = PhasedParty(
            0,
            1,
            0,
            phases=[(1, lambda _: CountingParty(0, 1, 0, 1, "a")), (1, make_second)],
        )
        self._run_alone(party)
        assert received == [("a", [0])]
        assert party.output == ("b", [0])

    def test_idle_tail_sends_nothing(self):
        """A sub-party shorter than its declared phase goes quiet at the
        barrier — TreeAA's 'wait until round R_PathsFinder ends'."""
        party = PhasedParty(
            0,
            1,
            0,
            phases=[
                (4, lambda _: CountingParty(0, 1, 0, 2, "a")),
                (1, lambda _: CountingParty(0, 1, 0, 1, "b")),
            ],
        )
        sent = []
        for r in range(party.duration):
            out = party.messages_for_round(r)
            sent.append(bool(out))
            inbox = {0: out[0]} if 0 in out else {}
            party.receive_round(r, inbox)
        assert sent == [True, True, False, False, True]
        assert party.output == ("b", [0])

    def test_phase_index_tracks_progress(self):
        party = PhasedParty(
            0,
            1,
            0,
            phases=[
                (1, lambda _: CountingParty(0, 1, 0, 1, "a")),
                (1, lambda _: CountingParty(0, 1, 0, 1, "b")),
            ],
        )
        assert party.phase_index == 0
        party.messages_for_round(0)
        party.receive_round(0, {})
        assert party.phase_index == 1

    def test_second_phase_sub_rounds_are_local(self):
        """The phase-2 sub-party must see local round numbers starting at 0."""
        captured = {}

        class Probe(CountingParty):
            def messages_for_round(self, round_index):
                captured.setdefault("first_round", round_index)
                return super().messages_for_round(round_index)

        party = PhasedParty(
            0,
            1,
            0,
            phases=[
                (3, lambda _: CountingParty(0, 1, 0, 3, "a")),
                (2, lambda _: Probe(0, 1, 0, 2, "b")),
            ],
        )
        self._run_alone(party)
        assert captured["first_round"] == 0

    def test_out_of_range_rounds_are_ignored(self):
        party = PhasedParty(
            0, 1, 0, phases=[(1, lambda _: CountingParty(0, 1, 0, 1, "a"))]
        )
        self._run_alone(party)
        assert party.messages_for_round(99) == {}
        party.receive_round(99, {})  # no crash
