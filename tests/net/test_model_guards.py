"""Regression tests for simulator model guards against hostile inputs.

Two attack surfaces the executor itself must survive:

* a Byzantine message addressed outside ``0..n-1`` must raise
  :class:`ByzantineModelError` instead of being silently dropped (or
  corrupting delivery);
* a deeply nested Byzantine payload must be *charged* to the adversary,
  not crash the simulator with ``RecursionError``.
"""

import pytest

from repro.adversary import Adversary
from repro.net import (
    ByzantineModelError,
    SynchronousNetwork,
    TraceLevel,
    broadcast,
    run_protocol,
)
from repro.net.network import payload_units
from repro.net.protocol import ProtocolParty


class OneRoundParty(ProtocolParty):
    """Broadcast the own id once; output the received inbox."""

    @property
    def duration(self):
        return 1

    def messages_for_round(self, round_index):
        return broadcast(self.pid, self.n)

    def receive_round(self, round_index, inbox):
        self.output = dict(inbox)


class FixedOutboxAdversary(Adversary):
    """Sends a fixed outbox dict for its corrupted parties every round."""

    def __init__(self, outboxes, corrupt=None):
        super().__init__(corrupt=corrupt)
        self._outboxes = outboxes

    def byzantine_messages(self, view):
        return {
            sender: dict(outbox)
            for sender, outbox in self._outboxes.items()
        }


def _run(outboxes, n=4, t=1, trace_level=TraceLevel.FULL):
    return run_protocol(
        n,
        t,
        lambda pid: OneRoundParty(pid, n, t),
        adversary=FixedOutboxAdversary(outboxes, corrupt=[n - 1]),
        trace_level=trace_level,
    )


class TestByzantineRecipientValidation:
    def test_out_of_range_recipient_raises(self):
        with pytest.raises(ByzantineModelError, match="unknown recipient"):
            _run({3: {4: "payload"}})

    def test_negative_recipient_raises(self):
        with pytest.raises(ByzantineModelError, match="unknown recipient"):
            _run({3: {-1: "payload"}})

    def test_non_int_recipient_raises(self):
        with pytest.raises(ByzantineModelError, match="unknown recipient"):
            _run({3: {"0": "payload"}})

    def test_bool_recipient_raises(self):
        # bool is an int subclass; the channel model still has no party
        # named True.
        with pytest.raises(ByzantineModelError, match="unknown recipient"):
            _run({3: {True: "payload"}})

    @pytest.mark.parametrize(
        "trace_level", [TraceLevel.FULL, TraceLevel.AGGREGATE]
    )
    def test_validation_applies_at_both_trace_levels(self, trace_level):
        with pytest.raises(ByzantineModelError, match="unknown recipient"):
            _run({3: {99: "payload"}}, trace_level=trace_level)

    @pytest.mark.parametrize(
        "trace_level", [TraceLevel.FULL, TraceLevel.AGGREGATE]
    )
    def test_legal_recipients_deliver(self, trace_level):
        result = _run({3: {0: "byz"}}, trace_level=trace_level)
        assert result.outputs[0][3] == "byz"
        assert result.trace.byzantine_message_count == 1


def _deep_payload(depth=5000):
    payload = "atom"
    for _ in range(depth):
        payload = [payload]
    return payload


class TestAdversarialPayloadDepth:
    def test_payload_units_is_iterative(self):
        # Far beyond the interpreter's default recursion limit (~1000).
        assert payload_units(_deep_payload(5000)) == 1

    def test_deep_mixed_containers(self):
        payload = {"k": "v"}
        for _ in range(3000):
            payload = {"wrap": payload, "pad": (1, 2)}
        assert payload_units(payload) > 0

    def test_deep_byzantine_payload_is_charged_not_crashing(self):
        result = _run({3: {0: _deep_payload(5000)}})
        # The nested containers collapse to one atomic unit, charged to
        # the adversary — and the execution completed.
        assert result.trace.byzantine_payload_units == 1
        assert result.trace.rounds_executed == 1
