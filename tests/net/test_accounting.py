"""Tests for message and payload-unit accounting (experiment T8's basis)."""

import pytest

from repro.adversary import RandomNoiseAdversary, SilentAdversary
from repro.net import run_protocol
from repro.net.network import payload_units
from repro.protocols import RealAAParty


class TestPayloadUnits:
    def test_atoms(self):
        assert payload_units(1) == 1
        assert payload_units("s") == 1
        assert payload_units(None) == 1
        assert payload_units(3.5) == 1

    def test_containers(self):
        assert payload_units((1, 2, 3)) == 3
        assert payload_units([1, [2, 3]]) == 3
        assert payload_units({1: 2, 3: 4}) == 4  # keys count too
        assert payload_units(("val", 0, {1: 2.0})) == 4

    def test_empty_containers(self):
        assert payload_units(()) == 0
        assert payload_units({}) == 0

    def test_nested_protocol_payload(self):
        echo = ("echo", 0, {0: 1.0, 1: 2.0, 2: 3.0})
        assert payload_units(echo) == 2 + 6


class TestTraceAccounting:
    def _run(self, adversary):
        n, t = 4, 1
        inputs = [0.0, 3.0, 1.0, 2.0]
        return run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=2),
            adversary=adversary,
        )

    def test_per_round_messages_length(self):
        result = self._run(SilentAdversary())
        assert len(result.trace.per_round_messages) == result.trace.rounds_executed

    def test_honest_messages_per_round_constant(self):
        result = self._run(SilentAdversary())
        # 3 honest senders × 4 recipients, every round
        assert set(result.trace.per_round_messages) == {12}

    def test_byzantine_units_counted_separately(self):
        silent = self._run(SilentAdversary())
        noisy = self._run(RandomNoiseAdversary(seed=4))
        assert silent.trace.byzantine_payload_units == 0
        assert noisy.trace.byzantine_payload_units > 0
        assert (
            silent.trace.honest_payload_units > 0
        )  # honest traffic always counted

    def test_totals_are_sums(self):
        result = self._run(RandomNoiseAdversary(seed=4))
        trace = result.trace
        assert trace.message_count == (
            trace.honest_message_count + trace.byzantine_message_count
        )
        assert trace.payload_unit_count == (
            trace.honest_payload_units + trace.byzantine_payload_units
        )

    def test_message_count_matches_per_round_sum(self):
        result = self._run(RandomNoiseAdversary(seed=4))
        assert sum(result.trace.per_round_messages) == result.trace.message_count
