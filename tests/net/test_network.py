"""Tests for the synchronous network's execution semantics."""

import pytest

from repro.adversary import Adversary, NoAdversary, SilentAdversary
from repro.net import (
    ByzantineModelError,
    SynchronousNetwork,
    broadcast,
    run_fault_free,
    run_protocol,
)
from repro.net.protocol import ProtocolParty


class EchoInputParty(ProtocolParty):
    """One round: broadcast own input; output the received sender→value map."""

    def __init__(self, pid, n, t, value):
        super().__init__(pid, n, t)
        self.value = value

    @property
    def duration(self):
        return 1

    def messages_for_round(self, round_index):
        return broadcast(self.value, self.n)

    def receive_round(self, round_index, inbox):
        self.output = dict(inbox)


class TestLockstep:
    def test_all_to_all_delivery(self):
        result = run_fault_free(3, lambda pid: EchoInputParty(pid, 3, 0, pid * 10))
        for pid in range(3):
            assert result.outputs[pid] == {0: 0, 1: 10, 2: 20}

    def test_rounds_executed(self):
        result = run_fault_free(3, lambda pid: EchoInputParty(pid, 3, 0, 1))
        assert result.trace.rounds_executed == 1

    def test_honest_message_accounting(self):
        result = run_fault_free(3, lambda pid: EchoInputParty(pid, 3, 0, 1))
        assert result.trace.honest_message_count == 9  # 3 senders × 3 recipients

    def test_party_keys_must_be_dense(self):
        with pytest.raises(ValueError):
            SynchronousNetwork({1: EchoInputParty(1, 2, 0, 0)}, t=0)

    def test_max_rounds_truncation(self):
        class TwoRound(EchoInputParty):
            @property
            def duration(self):
                return 2

        result = run_protocol(
            2, 0, lambda pid: TwoRound(pid, 2, 0, pid), max_rounds=1
        )
        assert result.trace.rounds_executed == 1


class TestAuthenticatedChannels:
    def test_adversary_cannot_speak_for_honest(self):
        class Impersonator(Adversary):
            def byzantine_messages(self, view):
                # try to send as honest party 0
                return {0: {1: "forged"}}

        with pytest.raises(ByzantineModelError, match="honest"):
            run_protocol(
                3,
                1,
                lambda pid: EchoInputParty(pid, 3, 1, pid),
                adversary=Impersonator(corrupt=[2]),
            )

    def test_byzantine_sender_id_is_its_own(self):
        class Liar(Adversary):
            def byzantine_messages(self, view):
                return {2: {0: "lie", 1: "other lie"}}

        result = run_protocol(
            3, 1, lambda pid: EchoInputParty(pid, 3, 1, pid), adversary=Liar(corrupt=[2])
        )
        assert result.outputs[0][2] == "lie"
        assert result.outputs[1][2] == "other lie"


class TestCorruptionBudget:
    def test_budget_enforced_at_setup(self):
        with pytest.raises(ByzantineModelError, match="budget"):
            run_protocol(
                4,
                1,
                lambda pid: EchoInputParty(pid, 4, 1, pid),
                adversary=SilentAdversary(corrupt=[1, 2]),
            )

    def test_unknown_party_rejected(self):
        with pytest.raises(ByzantineModelError):
            run_protocol(
                3,
                1,
                lambda pid: EchoInputParty(pid, 3, 1, pid),
                adversary=SilentAdversary(corrupt=[17]),
            )

    def test_default_corruption_is_last_t_parties(self):
        result = run_protocol(
            5, 2, lambda pid: EchoInputParty(pid, 5, 2, pid), adversary=SilentAdversary()
        )
        assert result.corrupted == {3, 4}
        assert result.honest == {0, 1, 2}

    def test_no_adversary_object(self):
        result = run_protocol(
            3, 1, lambda pid: EchoInputParty(pid, 3, 1, pid), adversary=NoAdversary()
        )
        assert result.corrupted == set()

    def test_corruption_rounds_recorded(self):
        result = run_protocol(
            4,
            1,
            lambda pid: EchoInputParty(pid, 4, 1, pid),
            adversary=SilentAdversary(corrupt=[3]),
        )
        assert result.trace.corruption_rounds == {3: 0}


class TestRushing:
    def test_adversary_sees_honest_messages_first(self):
        observed = {}

        class Rusher(Adversary):
            def byzantine_messages(self, view):
                observed["honest"] = {
                    sender: outbox[0]
                    for sender, outbox in view.honest_messages.items()
                }
                # Echo party 0's value back at everyone, proving we saw it
                # before our own messages were committed.
                value = view.honest_messages[0][0]
                return {2: {pid: ("rushed", value) for pid in range(view.n)}}

        result = run_protocol(
            3,
            1,
            lambda pid: EchoInputParty(pid, 3, 1, pid * 7),
            adversary=Rusher(corrupt=[2]),
        )
        assert observed["honest"] == {0: 0, 1: 7}
        assert result.outputs[0][2] == ("rushed", 0)


class TestAdaptiveCorruption:
    def test_mid_protocol_corruption_silences_party(self):
        class ThreeRound(EchoInputParty):
            def __init__(self, pid, n, t, value):
                super().__init__(pid, n, t, value)
                self.inboxes = []

            @property
            def duration(self):
                return 3

            def receive_round(self, round_index, inbox):
                self.inboxes.append(dict(inbox))
                self.output = self.inboxes

        class SeizeAtRound1(Adversary):
            def initial_corruptions(self, view):
                return set()

            def adapt_corruptions(self, view):
                return {2} if view.round_index == 1 else set()

            def byzantine_messages(self, view):
                return {pid: {} for pid in view.corrupted}

        result = run_protocol(
            3,
            1,
            lambda pid: ThreeRound(pid, 3, 1, pid),
            adversary=SeizeAtRound1(),
        )
        inboxes = result.outputs[0]
        assert 2 in inboxes[0]  # round 0: party 2 was honest and spoke
        assert 2 not in inboxes[1]  # corrupted at round 1: silenced that round
        assert 2 not in inboxes[2]
        assert result.trace.corruption_rounds == {2: 1}

    def test_adaptive_budget_enforced(self):
        class GreedySeizer(Adversary):
            def initial_corruptions(self, view):
                return {2}

            def adapt_corruptions(self, view):
                return {0, 1}

            def byzantine_messages(self, view):
                return {}

        with pytest.raises(ByzantineModelError, match="budget"):
            run_protocol(
                3,
                1,
                lambda pid: EchoInputParty(pid, 3, 1, pid),
                adversary=GreedySeizer(),
            )
