"""TraceLevel: the AGGREGATE fast path must agree with FULL accounting
on everything except payload units (which it deliberately skips)."""

import pytest

from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import run_real_aa, run_tree_aa
from repro.net import SilentParty, TraceLevel, TranscriptRecorder, run_protocol
from repro.trees import path_tree


def _realaa(trace_level):
    return run_real_aa(
        [0.0, 8.0, 0.0, 8.0, 0.0, 8.0, 0.0],
        t=2,
        epsilon=1.0,
        known_range=8.0,
        adversary=BurnScheduleAdversary([1, 1]),
        trace_level=trace_level,
    )


class TestAggregateEquivalence:
    def test_counts_and_outputs_match_full(self):
        full = _realaa(TraceLevel.FULL)
        fast = _realaa(TraceLevel.AGGREGATE)
        assert fast.honest_outputs == full.honest_outputs
        assert fast.rounds == full.rounds
        ft, at = full.execution.trace, fast.execution.trace
        assert at.honest_message_count == ft.honest_message_count
        assert at.byzantine_message_count == ft.byzantine_message_count
        assert at.per_round_messages == ft.per_round_messages
        assert at.rounds_executed == ft.rounds_executed
        assert at.corruption_rounds == ft.corruption_rounds

    def test_payload_units_only_at_full(self):
        full = _realaa(TraceLevel.FULL)
        fast = _realaa(TraceLevel.AGGREGATE)
        assert full.execution.trace.payload_unit_count > 0
        assert fast.execution.trace.payload_unit_count == 0
        assert full.execution.trace.level is TraceLevel.FULL
        assert fast.execution.trace.level is TraceLevel.AGGREGATE

    def test_tree_aa_rows_identical(self):
        tree = path_tree(15)
        inputs = [tree.vertices[0], tree.vertices[-1]] + [tree.vertices[7]] * 5
        full = run_tree_aa(
            tree,
            inputs,
            2,
            adversary=BurnScheduleAdversary([1, 1]),
            trace_level=TraceLevel.FULL,
        )
        fast = run_tree_aa(
            tree,
            inputs,
            2,
            adversary=BurnScheduleAdversary([1, 1]),
            trace_level=TraceLevel.AGGREGATE,
        )
        assert fast.honest_outputs == full.honest_outputs
        assert fast.rounds == full.rounds
        assert fast.achieved_aa == full.achieved_aa

    def test_observer_still_sees_messages_at_aggregate(self):
        from repro.net.protocol import ProtocolParty
        from repro.net import broadcast

        class Chatter(ProtocolParty):
            @property
            def duration(self):
                return 2

            def messages_for_round(self, round_index):
                return broadcast(("msg", round_index), self.n)

            def receive_round(self, round_index, inbox):
                self.output = round_index

        recorder = TranscriptRecorder()
        run_protocol(
            3,
            0,
            lambda pid: Chatter(pid, 3, 0),
            observer=recorder,
            trace_level=TraceLevel.AGGREGATE,
        )
        assert len(recorder.rounds) == 2
        assert all(record.honest_messages for record in recorder.rounds)

    def test_default_level_is_full(self):
        result = run_protocol(2, 0, lambda pid: SilentParty(pid, 2, 0))
        assert result.trace.level is TraceLevel.FULL
