"""Differential tests: independent implementations must agree.

Several behaviours in this library are implemented twice (a fast path and
a reference, or a synchronous and an asynchronous variant).  These tests
pit them against each other on random instances — the cheapest way to
catch a bug in exactly one of them.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from .strategies import small_trees, trees_with_vertex_choices


class TestSafeAreaImplementations:
    @given(trees_with_vertex_choices(n_choices=6))
    def test_fast_vs_per_vertex_rule(self, tree_and_values):
        from repro.trees import is_safe_vertex, safe_area

        tree, values = tree_and_values
        for t in (0, 1, 2):
            if len(values) - t < 1:
                continue
            fast = safe_area(tree, values, t)
            slow = frozenset(
                v for v in tree.vertices if is_safe_vertex(tree, v, values, t)
            )
            assert fast == slow

    @given(trees_with_vertex_choices(n_choices=5))
    def test_fast_vs_brute_force_subsets(self, tree_and_values):
        from repro.trees import brute_force_safe_area, safe_area

        tree, values = tree_and_values
        assert safe_area(tree, values, 1) == brute_force_safe_area(tree, values, 1)


class TestDistanceImplementations:
    @given(small_trees(min_vertices=2))
    def test_bfs_vs_lca_distance(self, tree):
        from repro.trees import RootedTree, distance

        rooted = RootedTree(tree)
        for u in tree.vertices:
            for v in tree.vertices:
                assert distance(tree, u, v) == rooted.distance(u, v)


class TestEulerVsRootedSubtrees:
    @given(small_trees())
    def test_interval_vs_traversal(self, tree):
        from repro.trees import list_construction

        euler = list_construction(tree)
        rooted = euler.rooted
        for v in tree.vertices:
            via_interval = {
                u for u in tree.vertices if euler.vertex_in_subtree(u, v)
            }
            assert via_interval == set(rooted.subtree_vertices(v))


class TestSyncVsAsyncAA:
    """The two models must both achieve AA on the same instance; outputs
    need not match (different protocols), but both verdicts must."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_real_values(self, seed):
        from repro.asynchrony import (
            AsyncRealAAParty,
            AsyncSilentAdversary,
            RandomScheduler,
            run_async_protocol,
        )
        from repro.adversary import SilentAdversary
        from repro.core import run_real_aa

        rng = random.Random(seed)
        n, t = 7, 2
        inputs = [rng.uniform(0, 20) for _ in range(n)]
        lo = min(inputs[: n - t])
        hi = max(inputs[: n - t])

        sync = run_real_aa(
            inputs, t, epsilon=0.5, known_range=20.0, adversary=SilentAdversary()
        )
        assert sync.achieved_aa

        async_result = run_async_protocol(
            n,
            t,
            lambda pid: AsyncRealAAParty(
                pid, n, t, inputs[pid], epsilon=0.5, known_range=20.0
            ),
            adversary=AsyncSilentAdversary(),
            scheduler=RandomScheduler(seed),
        )
        assert async_result.completed
        values = list(async_result.honest_outputs.values())
        assert max(values) - min(values) <= 0.5
        assert all(lo <= v <= hi for v in values)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_trees(self, seed):
        from repro.analysis import tree_agreement, tree_validity
        from repro.asynchrony import (
            AsyncSilentAdversary,
            AsyncTreeAAParty,
            RandomScheduler,
            run_async_protocol,
        )
        from repro.adversary import SilentAdversary
        from repro.core import run_tree_aa
        from repro.trees import random_tree

        tree = random_tree(20, seed)
        rng = random.Random(seed)
        n, t = 7, 2
        inputs = [rng.choice(tree.vertices) for _ in range(n)]

        sync = run_tree_aa(tree, inputs, t, adversary=SilentAdversary())
        assert sync.achieved_aa

        async_result = run_async_protocol(
            n,
            t,
            lambda pid: AsyncTreeAAParty(pid, n, t, tree, inputs[pid]),
            adversary=AsyncSilentAdversary(),
            scheduler=RandomScheduler(seed),
            max_steps=400_000,
        )
        assert async_result.completed
        outputs = list(async_result.honest_outputs.values())
        honest_inputs = [inputs[p] for p in sorted(async_result.honest)]
        assert tree_validity(tree, honest_inputs, outputs)
        assert tree_agreement(tree, outputs)


class TestGoldenExecutions:
    """Pinned outputs of deterministic executions: any protocol drift that
    changes behaviour must update these intentionally."""

    def test_figure_tree_burn_execution(self):
        from repro.adversary.realaa_attacks import BurnScheduleAdversary
        from repro.core import run_tree_aa
        from repro.trees import figure_tree

        outcome = run_tree_aa(
            figure_tree(),
            ["v3", "v6", "v5", "v6", "v3", "v8", "v8"],
            2,
            adversary=BurnScheduleAdversary([1, 1]),
        )
        assert outcome.honest_outputs == {pid: "v3" for pid in range(5)}
        assert outcome.rounds == 18

    def test_fault_free_realaa_exact_value(self):
        from repro.core import run_real_aa

        outcome = run_real_aa([1.0, 2.0, 3.0, 4.0], t=0, epsilon=0.5)
        assert set(outcome.honest_outputs.values()) == {2.5}

    def test_euler_list_golden(self):
        from repro.trees import figure_tree, list_construction

        euler = list_construction(figure_tree())
        assert "".join(v[1] for v in euler.entries) == "123637324842521"

    def test_burned_realaa_trace_golden(self):
        from repro.adversary.realaa_attacks import BurnScheduleAdversary
        from repro.analysis import honest_value_ranges
        from repro.net import run_protocol
        from repro.protocols import RealAAParty

        n, t = 7, 2
        inputs = [0.0, 0.0, 0.0, 10.0, 10.0, 0.0, 0.0]
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=3),
            adversary=BurnScheduleAdversary([1, 1]),
        )
        ranges = honest_value_ranges(result)
        assert ranges[0] == 10.0
        assert ranges[1] == pytest.approx(10 / 3)
        assert ranges[2] == pytest.approx(10 / 6)
        assert ranges[3] == pytest.approx(0.0, abs=1e-12)
