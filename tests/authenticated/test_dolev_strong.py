"""Tests for Dolev–Strong broadcast: agreement for any t < n."""

import pytest

from repro.adversary import (
    CrashAdversary,
    PassiveAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)
from repro.authenticated import (
    BOTTOM,
    DolevStrongParty,
    DSEquivocatorAdversary,
    SignatureAuthority,
    SignatureForgeryAdversary,
)
from repro.net import run_protocol


def run_ds(n, t, origin, value, adversary=None):
    authority = SignatureAuthority()
    return run_protocol(
        n,
        t,
        lambda pid: DolevStrongParty(pid, n, t, authority, origin, value),
        adversary=adversary,
    )


class TestHonestOrigin:
    def test_all_agree_on_the_value(self):
        result = run_ds(5, 2, origin=0, value="v", adversary=SilentAdversary())
        assert set(result.honest_outputs.values()) == {"v"}

    def test_rounds_are_t_plus_one(self):
        result = run_ds(5, 2, origin=0, value="v", adversary=SilentAdversary())
        assert result.trace.rounds_executed == 3

    def test_beyond_one_third(self):
        """t = 2 of n = 5 — impossible unauthenticated, fine here."""
        result = run_ds(5, 2, origin=1, value=99, adversary=PassiveAdversary())
        assert set(result.honest_outputs.values()) == {99}

    def test_half_minus_one(self):
        result = run_ds(7, 3, origin=0, value="w", adversary=SilentAdversary())
        assert set(result.honest_outputs.values()) == {"w"}

    def test_t_zero_single_round(self):
        result = run_ds(3, 0, origin=2, value=1.25)
        assert set(result.honest_outputs.values()) == {1.25}
        assert result.trace.rounds_executed == 1

    def test_noise_is_ignored(self):
        result = run_ds(
            5, 2, origin=0, value="v", adversary=RandomNoiseAdversary(seed=5)
        )
        assert set(result.honest_outputs.values()) == {"v"}

    def test_forgery_attempt_bounces(self):
        result = run_ds(
            5,
            2,
            origin=0,
            value="real",
            adversary=SignatureForgeryAdversary(
                forged_origin=0, planted_value="EVIL"
            ),
        )
        assert set(result.honest_outputs.values()) == {"real"}


class TestByzantineOrigin:
    def test_silent_origin_yields_bottom(self):
        result = run_ds(5, 2, origin=4, value=None, adversary=SilentAdversary())
        assert set(result.honest_outputs.values()) == {BOTTOM}

    @pytest.mark.parametrize("n,t", [(4, 1), (5, 2), (7, 3)])
    def test_equivocation_yields_consistent_output(self, n, t):
        """The attack signatures exist to stop: every honest party must
        reach the SAME output — here consistently ⊥."""
        adversary = DSEquivocatorAdversary(values=lambda pid: ("A", "B"))
        result = run_ds(n, t, origin=n - 1, value=None, adversary=adversary)
        outputs = set(result.honest_outputs.values())
        assert len(outputs) == 1
        assert outputs == {BOTTOM}

    def test_crash_mid_broadcast_stays_consistent(self):
        result = run_ds(
            5,
            2,
            origin=4,
            value="v",
            adversary=CrashAdversary(crash_round=1, partial_to=2),
        )
        outputs = set(result.honest_outputs.values())
        assert len(outputs) == 1  # agreement regardless of what it is


class TestChainValidation:
    def test_chain_shorter_than_round_rejected(self):
        from repro.authenticated.dolev_strong import _chain_valid

        authority = SignatureAuthority()
        sig = authority.signer(0).sign(("ds", "s", 0, "v"))
        assert _chain_valid(authority, "s", 0, "v", (sig,), n=4, minimum=1)
        assert not _chain_valid(authority, "s", 0, "v", (sig,), n=4, minimum=2)

    def test_chain_must_include_origin(self):
        from repro.authenticated.dolev_strong import _chain_valid

        authority = SignatureAuthority()
        sig = authority.signer(1).sign(("ds", "s", 0, "v"))  # not the origin
        assert not _chain_valid(authority, "s", 0, "v", (sig,), n=4, minimum=1)

    def test_duplicate_signers_do_not_count_twice(self):
        from repro.authenticated.dolev_strong import _chain_valid

        authority = SignatureAuthority()
        sig = authority.signer(0).sign(("ds", "s", 0, "v"))
        assert not _chain_valid(authority, "s", 0, "v", (sig, sig), n=4, minimum=2)

    def test_signature_on_other_value_rejected(self):
        from repro.authenticated.dolev_strong import _chain_valid

        authority = SignatureAuthority()
        sig = authority.signer(0).sign(("ds", "s", 0, "other"))
        assert not _chain_valid(authority, "s", 0, "v", (sig,), n=4, minimum=1)
