"""Tests for exact AA and authenticated TreeAA at t < n/2."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import (
    ChaosAdversary,
    CrashAdversary,
    PassiveAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)
from repro.authenticated import (
    AuthTreeAAParty,
    DSEquivocatorAdversary,
    ExactRealAAParty,
    SignatureAuthority,
    check_authenticated_resilience,
    exact_trimmed_mean,
    run_auth_tree_aa,
)
from repro.net import run_protocol
from repro.trees import LabeledTree, figure_tree, path_tree, random_tree

from ..strategies import trees_with_vertex_choices


class TestThreshold:
    def test_half_rejected(self):
        with pytest.raises(ValueError, match="n/2"):
            check_authenticated_resilience(4, 2)
        with pytest.raises(ValueError, match="n/2"):
            check_authenticated_resilience(6, 3)

    def test_below_half_accepted(self):
        check_authenticated_resilience(5, 2)
        check_authenticated_resilience(7, 3)
        check_authenticated_resilience(2, 0)


class TestExactTrimmedMean:
    def test_all_honest(self):
        # m = n: trim k = t from each side
        assert exact_trimmed_mean([0.0, 1.0, 2.0, 3.0, 4.0], n=5, t=2) == 2.0

    def test_some_bottom(self):
        # m = n - t: nothing needs trimming
        assert exact_trimmed_mean([1.0, 2.0, 3.0], n=5, t=2) == 2.0

    def test_byzantine_outliers_trimmed(self):
        values = [5.0, 5.0, 5.0, 1e9, -1e9]
        assert exact_trimmed_mean(values, n=5, t=2) == 5.0

    def test_too_few_values_rejected(self):
        with pytest.raises(ValueError):
            exact_trimmed_mean([1.0, 2.0], n=5, t=2)


class TestExactRealAA:
    def _run(self, inputs, n, t, adversary):
        authority = SignatureAuthority()
        return run_protocol(
            n,
            t,
            lambda pid: ExactRealAAParty(pid, n, t, authority, inputs[pid]),
            adversary=adversary,
        )

    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: SilentAdversary(),
            lambda: PassiveAdversary(),
            lambda: RandomNoiseAdversary(seed=3),
            lambda: ChaosAdversary(seed=5),
            lambda: CrashAdversary(crash_round=1, partial_to=2),
        ],
    )
    def test_exact_agreement_at_two_fifths(self, adversary_factory):
        n, t = 5, 2  # t >= n/3: beyond the unauthenticated threshold
        inputs = [0.0, 10.0, 4.0, 6.0, 2.0]
        result = self._run(inputs, n, t, adversary_factory())
        outputs = set(result.honest_outputs.values())
        assert len(outputs) == 1  # EXACT agreement
        value = outputs.pop()
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        assert min(honest_inputs) <= value <= max(honest_inputs)

    def test_rounds_are_t_plus_one(self):
        result = self._run([1.0] * 7, 7, 3, SilentAdversary())
        assert result.trace.rounds_executed == 4

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100), min_size=5, max_size=5
        )
    )
    def test_property_exact_and_valid(self, inputs):
        result = self._run(inputs, 5, 2, ChaosAdversary(seed=1))
        outputs = set(result.honest_outputs.values())
        assert len(outputs) == 1
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        value = outputs.pop()
        assert min(honest_inputs) - 1e-9 <= value <= max(honest_inputs) + 1e-9

    def test_equivocating_origins_become_bottom(self):
        n, t = 5, 2
        inputs = [0.0, 10.0, 4.0, 99.0, 99.0]
        adversary = DSEquivocatorAdversary(values=lambda pid: (-1e6, 1e6))
        result = self._run(inputs, n, t, adversary)
        outputs = set(result.honest_outputs.values())
        assert len(outputs) == 1
        value = outputs.pop()
        assert 0.0 <= value <= 10.0  # equivocators excluded entirely
        for pid in result.honest:
            extracted = result.parties[pid].extracted
            assert extracted[3] is None and extracted[4] is None


class TestAuthTreeAA:
    @pytest.mark.parametrize(
        "n,t", [(3, 1), (5, 2), (7, 3), (9, 4)]
    )
    def test_beyond_one_third(self, n, t):
        """The headline: tree AA at every t < n/2 — far beyond what any
        unauthenticated protocol can do for t >= n/3."""
        tree = random_tree(15, seed=n)
        rng = random.Random(n)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        outcome = run_auth_tree_aa(tree, inputs, t, adversary=PassiveAdversary())
        assert outcome.achieved_aa
        # exact engine: all honest output the SAME vertex
        assert len(set(outcome.honest_outputs.values())) == 1

    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: SilentAdversary(),
            lambda: RandomNoiseAdversary(seed=9),
            lambda: ChaosAdversary(seed=2),
            lambda: DSEquivocatorAdversary(values=lambda pid: ("v00", "v01")),
        ],
    )
    def test_adversaries(self, adversary_factory):
        tree = path_tree(12)
        n, t = 5, 2
        rng = random.Random(7)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        outcome = run_auth_tree_aa(tree, inputs, t, adversary=adversary_factory())
        assert outcome.achieved_aa

    def test_duration_is_two_ds_phases(self):
        authority = SignatureAuthority()
        party = AuthTreeAAParty(0, 5, 2, authority, figure_tree(), "v1")
        assert party.duration == 2 * (2 + 1)

    def test_trivial_tree(self):
        authority = SignatureAuthority()
        tree = LabeledTree(edges=[("a", "b")])
        party = AuthTreeAAParty(0, 5, 2, authority, tree, "a")
        assert party.duration == 0
        assert party.output == "a"

    def test_threshold_enforced(self):
        authority = SignatureAuthority()
        with pytest.raises(ValueError, match="n/2"):
            AuthTreeAAParty(0, 4, 2, authority, figure_tree(), "v1")

    @given(
        trees_with_vertex_choices(n_choices=5, min_vertices=2),
        st.integers(min_value=0, max_value=20),
    )
    def test_property_random_trees_t2_of_5(self, tree_and_inputs, seed):
        tree, inputs = tree_and_inputs
        outcome = run_auth_tree_aa(
            tree, inputs, 2, adversary=ChaosAdversary(seed=seed)
        )
        assert outcome.achieved_aa

    def test_rounds_independent_of_tree_size(self):
        n, t = 5, 2
        rounds = set()
        for size in (10, 100, 1000):
            tree = path_tree(size)
            rng = random.Random(size)
            inputs = [rng.choice(tree.vertices) for _ in range(n)]
            outcome = run_auth_tree_aa(tree, inputs, t, adversary=SilentAdversary())
            assert outcome.achieved_aa
            rounds.add(outcome.rounds)
        assert rounds == {2 * (t + 1)}


class TestCrossPhaseReplayRegression:
    """The domain-separation regression: replaying phase-1 Dolev–Strong
    messages into phase 2 must not make honest origins look equivocating.
    Found originally by the chaos fuzzer's 'stale' behaviour."""

    def test_chaos_stale_replay(self):
        tree = path_tree(12)
        n, t = 5, 2
        rng = random.Random(7)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        outcome = run_auth_tree_aa(tree, inputs, t, adversary=ChaosAdversary(seed=2))
        assert outcome.achieved_aa

    def test_explicit_replay_attack(self):
        """A dedicated adversary that records every round-0 payload and
        replays them all in every later round."""
        from repro.adversary.base import Adversary

        class ReplayEverything(Adversary):
            def __init__(self):
                super().__init__()
                self.recorded = []

            def byzantine_messages(self, view):
                for sender in sorted(view.honest_messages):
                    for payload in view.honest_messages[sender].values():
                        if (
                            isinstance(payload, tuple)
                            and payload
                            and payload[0] == "dsmsg"
                        ):
                            self.recorded.append(payload)
                        break
                out = {}
                for pid in sorted(view.corrupted):
                    outbox = {}
                    for i, payload in enumerate(self.recorded[-8:]):
                        outbox[i % view.n] = payload
                    out[pid] = outbox
                return out

        tree = path_tree(12)
        n, t = 5, 2
        rng = random.Random(3)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        outcome = run_auth_tree_aa(tree, inputs, t, adversary=ReplayEverything())
        assert outcome.achieved_aa

    def test_sessions_are_in_the_signed_message(self):
        from repro.authenticated.dolev_strong import _chain_valid

        authority = SignatureAuthority()
        sig = authority.signer(0).sign(("ds", "phase-1", 0, 5.0))
        # valid in its own session ...
        assert _chain_valid(authority, "phase-1", 0, 5.0, (sig,), n=5, minimum=1)
        # ... and dead on arrival in any other
        assert not _chain_valid(authority, "phase-2", 0, 5.0, (sig,), n=5, minimum=1)
