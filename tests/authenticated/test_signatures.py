"""Tests for the simulated signature scheme."""

import pytest

from repro.authenticated import Signature, SignatureAuthority


class TestSigning:
    def test_sign_and_verify(self):
        authority = SignatureAuthority()
        signature = authority.signer(3).sign(("msg", 1))
        assert authority.verify(signature, ("msg", 1))

    def test_wrong_message_fails(self):
        authority = SignatureAuthority()
        signature = authority.signer(3).sign("a")
        assert not authority.verify(signature, "b")

    def test_wrong_claimed_signer_fails(self):
        authority = SignatureAuthority()
        signature = authority.signer(3).sign("a")
        forged = Signature(signer=4, token=signature.token)
        assert not authority.verify(forged, "a")

    def test_guessed_tokens_fail(self):
        authority = SignatureAuthority()
        authority.signer(0).sign("real message")
        for guess in range(10):
            forged = Signature(signer=1, token=guess)
            assert not authority.verify(forged, "planted")

    def test_replay_is_allowed(self):
        """Real signatures are replayable; so are these."""
        authority = SignatureAuthority()
        signature = authority.signer(2).sign("hello")
        assert authority.verify(signature, "hello")
        assert authority.verify(Signature(2, signature.token), "hello")

    def test_cross_authority_isolation(self):
        a, b = SignatureAuthority(), SignatureAuthority()
        signature = a.signer(0).sign("x")
        assert not b.verify(signature, "x")

    def test_signer_capability_is_cached(self):
        authority = SignatureAuthority()
        assert authority.signer(5) is authority.signer(5)

    def test_unhashable_message_rejected(self):
        authority = SignatureAuthority()
        with pytest.raises(TypeError):
            authority.signer(0).sign(["un", "hashable"])

    def test_non_signature_objects_fail_verification(self):
        authority = SignatureAuthority()
        assert not authority.verify("not a signature", "m")
        assert not authority.verify(None, "m")
        assert not authority.verify(("sig", 0, 0), "m")
