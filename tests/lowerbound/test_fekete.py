"""Tests for K(R, D), Theorem 2, and the optimal budget splits."""

import itertools
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lowerbound import (
    fekete_K,
    fekete_K_closed_form,
    lower_bound_table,
    max_split_product,
    min_rounds_required,
    optimal_integer_split,
    theorem2_lower_bound,
)


def brute_force_best_product(t, rounds):
    best = 0
    for split in itertools.product(range(t + 1), repeat=rounds):
        if sum(split) <= t:
            product = 1
            for s in split:
                product *= s
            best = max(best, product)
    return best


class TestOptimalSplit:
    def test_even_division(self):
        assert optimal_integer_split(6, 3) == (2, 2, 2)

    def test_remainder_spread(self):
        assert optimal_integer_split(7, 3) == (3, 2, 2)

    def test_budget_below_rounds(self):
        assert optimal_integer_split(2, 4) == (1, 1, 0, 0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimal_integer_split(-1, 2)
        with pytest.raises(ValueError):
            optimal_integer_split(3, 0)

    @given(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=1, max_value=4),
    )
    def test_product_matches_brute_force(self, t, rounds):
        assert max_split_product(t, rounds) == brute_force_best_product(t, rounds)

    @given(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=1, max_value=4),
    )
    def test_split_within_budget(self, t, rounds):
        split = optimal_integer_split(t, rounds)
        assert len(split) == rounds
        assert sum(split) <= t


class TestFeketeK:
    def test_single_round(self):
        # K(1, D) = D · t/(n+t)
        assert fekete_K(1, 90.0, 7, 2) == pytest.approx(90.0 * 2 / 9)

    def test_degenerates_when_rounds_exceed_budget(self):
        assert fekete_K(3, 100.0, 7, 2) == 0.0

    def test_exact_at_least_closed_form_when_divisible(self):
        """Equation (1): the integer sup equals t^R/R^R when R | t (the even
        split is integral); otherwise the integer constraint can only lose a
        bounded constant factor per round."""
        for n, t in ((7, 2), (13, 4), (31, 10)):
            for R in range(1, t + 1):
                exact = fekete_K(R, 1000.0, n, t)
                closed = fekete_K_closed_form(R, 1000.0, n, t)
                if t % R == 0:
                    assert exact == pytest.approx(closed)
                else:
                    assert exact > 0
                    # floor/ceil parts lose at most a factor 2 per round
                    assert exact >= closed / (2.0**R)

    def test_scales_linearly_in_spread(self):
        assert fekete_K(2, 200.0, 7, 2) == pytest.approx(2 * fekete_K(2, 100.0, 7, 2))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            fekete_K(0, 1.0, 7, 2)
        with pytest.raises(ValueError):
            fekete_K(1, -1.0, 7, 2)
        with pytest.raises(ValueError):
            fekete_K_closed_form(0, 1.0, 7, 2)


class TestMinRoundsRequired:
    def test_t_zero(self):
        assert min_rounds_required(1e9, 4, 0) == 1

    def test_small_diameter(self):
        assert min_rounds_required(2.0, 7, 2) >= 1

    def test_grows_with_diameter(self):
        bounds = [min_rounds_required(10.0**e, 31, 10) for e in range(1, 7)]
        assert bounds == sorted(bounds)
        assert bounds[-1] > bounds[0]

    def test_definition(self):
        """The returned R has K(R) ≤ 1 while R−1 (if ≥ 1) has K(R−1) > 1
        — for the monotone regime the search operates in."""
        for D in (100.0, 1e4, 1e6):
            R = min_rounds_required(D, 31, 10)
            assert fekete_K(R, D, 31, 10) <= 1.0
            if R > 1:
                assert fekete_K(R - 1, D, 31, 10) > 1.0


class TestTheorem2:
    def test_footnote_t_zero(self):
        assert theorem2_lower_bound(1e9, 5, 0) == 1.0

    def test_small_diameter_degenerates(self):
        assert theorem2_lower_bound(3.0, 7, 2) == 1.0

    def test_example_value(self):
        # D = 2^20, n+t/t = 4.5: log2 D / log2(4.5 · 20)
        expected = 20.0 / math.log2(4.5 * 20)
        assert theorem2_lower_bound(2.0**20, 7, 2) == pytest.approx(expected)

    def test_grows_with_diameter(self):
        values = [theorem2_lower_bound(10.0**e, 7, 2) for e in range(1, 10)]
        assert values == sorted(values)

    def test_shrinks_with_more_honest_parties(self):
        """Larger (n+t)/t ⇒ the adversary is weaker ⇒ lower bound smaller."""
        strong = theorem2_lower_bound(1e6, 4, 1)
        weak = theorem2_lower_bound(1e6, 100, 1)
        assert weak < strong

    def test_invalid(self):
        with pytest.raises(ValueError):
            theorem2_lower_bound(10.0, 0, 0)


class TestTable:
    def test_lower_bound_table_rows(self):
        rows = lower_bound_table([10.0, 100.0], 7, 2)
        assert len(rows) == 2
        for spread, thm2, integer_bound in rows:
            assert thm2 >= 1.0
            assert integer_bound >= 1
