"""Tests for the executable chain-of-views constructions."""

import pytest

from repro.lowerbound import (
    chain_links,
    demonstrate_real,
    demonstrate_tree,
    one_round_view_chain,
    safe_area_midpoint_rule,
    trimmed_mean_rule,
    trimmed_midpoint_rule,
)
from repro.trees import diameter_path, path_tree, random_tree, star_tree


class TestViewChain:
    def test_endpoints(self):
        views = one_round_view_chain(7, 2, "a", "b")
        assert views[0] == ("a",) * 7
        assert views[-1] == ("b",) * 7

    def test_chain_length(self):
        views = one_round_view_chain(7, 2, 0, 1)
        assert len(views) == 1 + 4  # ceil(7/2) = 4 blocks

    def test_adjacent_views_differ_in_one_block(self):
        n, t = 7, 2
        views = one_round_view_chain(n, t, 0, 1)
        links = chain_links(n, t, 0, 1)
        for link in links:
            differing = {
                i
                for i in range(n)
                if link.view_before[i] != link.view_after[i]
            }
            assert differing == set(link.byzantine_block)
            assert len(differing) <= t

    def test_blocks_are_within_budget(self):
        for link in chain_links(10, 3, 0, 1):
            assert len(link.byzantine_block) <= 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            one_round_view_chain(3, 0, 0, 1)
        with pytest.raises(ValueError):
            one_round_view_chain(3, 3, 0, 1)


class TestRealDemonstration:
    def test_validity_pins_endpoints(self):
        demo = demonstrate_real(trimmed_mean_rule(2), 7, 2, 0.0, 1.0)
        assert demo.outputs[0] == pytest.approx(0.0)
        assert demo.outputs[-1] == pytest.approx(1.0)

    def test_guaranteed_gap_is_achieved(self):
        """The heart of Theorem 1: some adjacent execution pair forces a gap
        of at least D/s."""
        for rule in (trimmed_mean_rule(2), trimmed_midpoint_rule(2)):
            demo = demonstrate_real(rule, 7, 2, 0.0, 1.0)
            assert demo.max_gap >= demo.guaranteed_gap - 1e-12

    def test_gap_at_least_fekete_K(self):
        from repro.lowerbound import fekete_K

        n, t, spread = 7, 2, 1.0
        demo = demonstrate_real(trimmed_mean_rule(t), n, t, 0.0, spread)
        assert demo.max_gap >= fekete_K(1, spread, n, t) - 1e-12

    def test_witness_identifies_the_jump(self):
        demo = demonstrate_real(trimmed_mean_rule(2), 7, 2, 0.0, 1.0)
        link = demo.witness
        jump = abs(
            demo.outputs[link.index + 1] - demo.outputs[link.index]
        )
        assert jump == pytest.approx(demo.max_gap)

    def test_larger_n_with_same_t_shrinks_the_forced_gap(self):
        small = demonstrate_real(trimmed_mean_rule(2), 7, 2, 0.0, 1.0)
        large = demonstrate_real(trimmed_mean_rule(2), 25, 2, 0.0, 1.0)
        assert large.guaranteed_gap < small.guaranteed_gap


class TestTreeDemonstration:
    def test_on_a_path(self):
        tree = path_tree(33)
        demo = demonstrate_tree(safe_area_midpoint_rule(tree, 2), tree, 7, 2)
        longest = diameter_path(tree)
        assert demo.outputs[0] == longest.start
        assert demo.outputs[-1] == longest.end
        assert demo.max_gap >= demo.guaranteed_gap

    def test_on_a_random_tree(self):
        tree = random_tree(25, seed=9)
        demo = demonstrate_tree(safe_area_midpoint_rule(tree, 2), tree, 7, 2)
        assert demo.max_gap >= demo.guaranteed_gap

    def test_star_is_easy(self):
        """D = 2: the guaranteed gap is tiny and 1-agreement is achievable
        in one round — consistent with the Ω(1) bound for constant D."""
        tree = star_tree(6)
        demo = demonstrate_tree(safe_area_midpoint_rule(tree, 2), tree, 7, 2)
        assert demo.guaranteed_gap <= 1.0
