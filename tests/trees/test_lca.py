"""Tests for rooted trees and LCA queries."""

import pytest
from hypothesis import given

from repro.trees import (
    LabeledTree,
    RootedTree,
    binary_tree,
    distance,
    figure_tree,
    path_between,
    path_tree,
)

from ..strategies import small_trees


def brute_force_lca(rooted: RootedTree, u, v):
    """Reference LCA: deepest common vertex of the two root paths."""
    pu = rooted.root_path(u)
    pv = rooted.root_path(v)
    common = None
    for a, b in zip(pu, pv):
        if a == b:
            common = a
        else:
            break
    return common


class TestRootedStructure:
    def test_default_root_is_lowest_label(self):
        rooted = RootedTree(figure_tree())
        assert rooted.root == "v1"

    def test_explicit_root(self):
        rooted = RootedTree(figure_tree(), root="v3")
        assert rooted.root == "v3"
        assert rooted.parent("v2") == "v3"

    def test_unknown_root_rejected(self):
        with pytest.raises(KeyError):
            RootedTree(figure_tree(), root="nope")

    def test_parent_and_depth_on_figure_tree(self):
        rooted = RootedTree(figure_tree())
        assert rooted.parent("v1") is None
        assert rooted.parent("v2") == "v1"
        assert rooted.parent("v6") == "v3"
        assert rooted.depth("v1") == 0
        assert rooted.depth("v8") == 3

    def test_children_sorted_by_label(self):
        rooted = RootedTree(figure_tree())
        assert rooted.children("v2") == ("v3", "v4", "v5")
        assert rooted.children("v8") == ()

    def test_preorder_starts_at_root(self):
        rooted = RootedTree(figure_tree())
        order = rooted.preorder()
        assert order[0] == "v1"
        assert sorted(order) == sorted(figure_tree().vertices)

    def test_root_path(self):
        rooted = RootedTree(figure_tree())
        assert rooted.root_path("v8") == ("v1", "v2", "v4", "v8")
        assert rooted.root_path("v1") == ("v1",)

    def test_subtree_vertices(self):
        rooted = RootedTree(figure_tree())
        assert set(rooted.subtree_vertices("v3")) == {"v3", "v6", "v7"}
        assert set(rooted.subtree_vertices("v1")) == set(figure_tree().vertices)


class TestLCA:
    def test_figure_tree_lcas(self):
        rooted = RootedTree(figure_tree())
        assert rooted.lca("v6", "v7") == "v3"
        assert rooted.lca("v6", "v8") == "v2"
        assert rooted.lca("v6", "v3") == "v3"
        assert rooted.lca("v1", "v8") == "v1"
        assert rooted.lca("v5", "v5") == "v5"

    def test_unknown_vertex_rejected(self):
        rooted = RootedTree(figure_tree())
        with pytest.raises(KeyError):
            rooted.lca("v1", "zzz")

    @given(small_trees(min_vertices=2))
    def test_lca_matches_brute_force(self, tree):
        rooted = RootedTree(tree)
        vertices = tree.vertices
        for u in vertices:
            for v in vertices:
                assert rooted.lca(u, v) == brute_force_lca(rooted, u, v)

    @given(small_trees(min_vertices=2))
    def test_lca_lies_on_connecting_path(self, tree):
        rooted = RootedTree(tree)
        u, v = tree.vertices[0], tree.vertices[-1]
        lca = rooted.lca(u, v)
        assert lca in path_between(tree, u, v)

    @given(small_trees(min_vertices=2))
    def test_distance_via_lca_matches_bfs(self, tree):
        rooted = RootedTree(tree)
        for u in tree.vertices:
            for v in tree.vertices:
                assert rooted.distance(u, v) == distance(tree, u, v)

    def test_is_ancestor(self):
        rooted = RootedTree(figure_tree())
        assert rooted.is_ancestor("v2", "v8")
        assert rooted.is_ancestor("v8", "v8")
        assert not rooted.is_ancestor("v8", "v2")
        assert not rooted.is_ancestor("v3", "v8")

    def test_deep_path_tree(self):
        tree = path_tree(200)
        rooted = RootedTree(tree)
        names = tree.vertices
        assert rooted.lca(names[50], names[150]) == names[50]
        assert rooted.distance(names[0], names[199]) == 199

    def test_wide_binary_tree(self):
        tree = binary_tree(6)
        rooted = RootedTree(tree)
        leaves = [v for v in tree.vertices if tree.degree(v) == 1]
        for leaf in leaves[:10]:
            assert rooted.lca(leaf, rooted.root) == rooted.root

    def test_single_vertex_tree(self):
        tree = LabeledTree(vertices=["only"])
        rooted = RootedTree(tree)
        assert rooted.lca("only", "only") == "only"
        assert rooted.depth("only") == 0
