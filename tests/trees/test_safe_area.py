"""Tests for the tree safe area (the baseline's per-iteration core)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import (
    LabeledTree,
    brute_force_safe_area,
    component_value_counts,
    convex_hull,
    in_convex_hull,
    is_safe_vertex,
    path_tree,
    safe_area,
    safe_area_midpoint,
    safe_area_subtree_path,
    star_tree,
)

from ..strategies import small_trees, trees_with_vertex_choices


class TestComponentCounts:
    def test_counts_on_path(self):
        tree = path_tree(5)
        names = tree.vertices
        values = [names[0], names[0], names[4]]
        counts = component_value_counts(tree, names[2], values)
        assert sorted(counts) == [1, 2]

    def test_values_at_vertex_not_counted(self):
        tree = path_tree(3)
        names = tree.vertices
        counts = component_value_counts(tree, names[1], [names[1], names[1]])
        assert counts == (0, 0)


class TestSafeVertexRule:
    def test_t0_safe_area_is_hull(self):
        """With t = 0, safe = in the hull of all values."""
        tree = path_tree(7)
        names = tree.vertices
        values = [names[1], names[5]]
        area = safe_area(tree, values, t=0)
        assert area == convex_hull(tree, values)

    def test_majority_pins_the_area(self):
        tree = path_tree(5)
        names = tree.vertices
        values = [names[0]] * 4 + [names[4]]
        # with t = 1, deleting the lone names[4] leaves everything at names[0]
        area = safe_area(tree, values, t=1)
        assert area == frozenset({names[0]})

    def test_insufficient_values_rejected(self):
        tree = path_tree(3)
        with pytest.raises(ValueError):
            is_safe_vertex(tree, tree.vertices[0], [tree.vertices[0]], t=1)

    def test_negative_t_rejected(self):
        tree = path_tree(3)
        with pytest.raises(ValueError):
            is_safe_vertex(tree, tree.vertices[0], [tree.vertices[0]], t=-1)

    def test_unknown_value_rejected(self):
        tree = path_tree(3)
        with pytest.raises(KeyError):
            safe_area(tree, ["zzz", tree.vertices[0], tree.vertices[1]], t=1)


class TestAgainstBruteForce:
    @given(trees_with_vertex_choices(n_choices=4))
    def test_matches_subset_intersection_t1(self, tree_and_values):
        tree, values = tree_and_values
        assert safe_area(tree, values, 1) == brute_force_safe_area(tree, values, 1)

    @given(trees_with_vertex_choices(n_choices=7))
    def test_matches_subset_intersection_t2(self, tree_and_values):
        tree, values = tree_and_values
        assert safe_area(tree, values, 2) == brute_force_safe_area(tree, values, 2)

    @given(trees_with_vertex_choices(n_choices=5))
    def test_safe_area_within_full_hull(self, tree_and_values):
        tree, values = tree_and_values
        assert safe_area(tree, values, 1) <= convex_hull(tree, values)


class TestNonEmptiness:
    @given(trees_with_vertex_choices(n_choices=5))
    def test_nonempty_with_m_at_least_2t_plus_1(self, tree_and_values):
        tree, values = tree_and_values  # m = 5 = 2·2 + 1
        assert safe_area(tree, values, 2)

    @given(trees_with_vertex_choices(n_choices=3))
    def test_nonempty_t1(self, tree_and_values):
        tree, values = tree_and_values  # m = 3 = 2·1 + 1
        assert safe_area(tree, values, 1)


class TestRobustnessGuarantee:
    """The defining property: a safe vertex survives deleting any t values,
    i.e. lies in the hull of the honest values no matter which t of the
    received values were Byzantine."""

    @given(trees_with_vertex_choices(n_choices=5))
    def test_safe_vertices_in_every_subset_hull(self, tree_and_values):
        from itertools import combinations

        tree, values = tree_and_values
        t = 1
        area = safe_area(tree, values, t)
        for keep in combinations(range(len(values)), len(values) - t):
            subset = [values[i] for i in keep]
            for w in area:
                assert in_convex_hull(tree, w, subset)


class TestMidpoint:
    def test_midpoint_of_two_opinions(self):
        tree = path_tree(9)
        names = tree.vertices
        values = [names[0], names[0], names[8], names[8], names[4]]
        mid = safe_area_midpoint(tree, values, t=1)
        # safe area is the hull core; midpoint lands near the center
        assert mid in safe_area(tree, values, 1)

    def test_midpoint_single_vertex_area(self):
        tree = star_tree(4)
        center = tree.vertices[0]
        leaves = list(tree.vertices[1:])
        values = leaves[:3] + [leaves[0]]
        mid = safe_area_midpoint(tree, values, t=1)
        assert mid in safe_area(tree, values, 1)

    @given(trees_with_vertex_choices(n_choices=5))
    def test_midpoint_always_safe(self, tree_and_values):
        tree, values = tree_and_values
        assert safe_area_midpoint(tree, values, 1) in safe_area(tree, values, 1)

    @given(trees_with_vertex_choices(n_choices=5))
    def test_midpoint_deterministic(self, tree_and_values):
        tree, values = tree_and_values
        assert safe_area_midpoint(tree, values, 1) == safe_area_midpoint(
            tree, list(values), 1
        )

    @given(trees_with_vertex_choices(n_choices=5))
    def test_subtree_path_within_area(self, tree_and_values):
        tree, values = tree_and_values
        area = safe_area(tree, values, 1)
        path = safe_area_subtree_path(tree, values, 1)
        assert set(path.vertices) <= area

    @given(trees_with_vertex_choices(n_choices=5))
    def test_midpoint_halves_the_area_span(self, tree_and_values):
        """The midpoint is within ⌈span/2⌉ of every safe vertex — the step
        that gives the baseline its per-iteration halving."""
        from repro.trees import distance

        tree, values = tree_and_values
        area = safe_area(tree, values, 1)
        path = safe_area_subtree_path(tree, values, 1)
        mid = safe_area_midpoint(tree, values, 1)
        span = path.length
        for w in area:
            assert distance(tree, mid, w) <= (span + 1) // 2
