"""Tests for convex hulls on trees (Section 2, Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import (
    LabeledTree,
    convex_hull,
    diameter,
    hull_is_path,
    in_convex_hull,
    induced_subtree,
    path_between,
    path_tree,
    star_tree,
    steiner_diameter,
)

from ..strategies import small_trees, trees_with_vertex_choices


def figure1_tree() -> LabeledTree:
    """The tree of Figure 1: hull of {u1, u2, u3} is {u1..u5}.

    u4 and u5 are internal vertices connecting the three anchors; w1/w2
    hang off the hull.
    """
    return LabeledTree(
        edges=[
            ("u1", "u4"),
            ("u4", "u5"),
            ("u5", "u2"),
            ("u5", "u3"),
            ("u4", "w1"),
            ("u2", "w2"),
        ]
    )


class TestFigure1:
    def test_hull_matches_paper(self):
        tree = figure1_tree()
        hull = convex_hull(tree, ["u1", "u2", "u3"])
        assert hull == frozenset({"u1", "u2", "u3", "u4", "u5"})

    def test_membership_agrees(self):
        tree = figure1_tree()
        anchors = ["u1", "u2", "u3"]
        for vertex in tree.vertices:
            assert in_convex_hull(tree, vertex, anchors) == (
                vertex in convex_hull(tree, anchors)
            )


class TestConvexHull:
    def test_singleton(self):
        tree = path_tree(5)
        v = tree.vertices[2]
        assert convex_hull(tree, [v]) == frozenset({v})

    def test_two_vertices_is_their_path(self):
        tree = path_tree(6)
        names = tree.vertices
        hull = convex_hull(tree, [names[1], names[4]])
        assert hull == frozenset(path_between(tree, names[1], names[4]).vertices)

    def test_empty_rejected(self):
        tree = path_tree(3)
        with pytest.raises(ValueError):
            convex_hull(tree, [])
        with pytest.raises(ValueError):
            in_convex_hull(tree, tree.vertices[0], [])

    def test_unknown_vertex_rejected(self):
        tree = path_tree(3)
        with pytest.raises(KeyError):
            convex_hull(tree, ["nope"])

    def test_duplicates_ignored(self):
        tree = path_tree(4)
        names = tree.vertices
        assert convex_hull(tree, [names[0], names[0], names[3]]) == convex_hull(
            tree, [names[0], names[3]]
        )

    @given(trees_with_vertex_choices(n_choices=3))
    def test_anchors_always_inside(self, tree_and_anchors):
        tree, anchors = tree_and_anchors
        hull = convex_hull(tree, anchors)
        assert set(anchors) <= hull

    @given(trees_with_vertex_choices(n_choices=3))
    def test_hull_is_pairwise_path_union(self, tree_and_anchors):
        """w ∈ ⟨S⟩ iff w lies on P(u, v) for some u, v ∈ S (paper, §2)."""
        tree, anchors = tree_and_anchors
        hull = convex_hull(tree, anchors)
        brute = set()
        for u in anchors:
            for v in anchors:
                brute |= set(path_between(tree, u, v).vertices)
        assert hull == brute

    @given(trees_with_vertex_choices(n_choices=4))
    def test_membership_matches_materialised_hull(self, tree_and_anchors):
        tree, anchors = tree_and_anchors
        hull = convex_hull(tree, anchors)
        for vertex in tree.vertices:
            assert in_convex_hull(tree, vertex, anchors) == (vertex in hull)

    @given(trees_with_vertex_choices(n_choices=3))
    def test_hull_is_connected(self, tree_and_anchors):
        tree, anchors = tree_and_anchors
        hull = convex_hull(tree, anchors)
        # walk within the hull from one anchor
        seen = {anchors[0]}
        frontier = [anchors[0]]
        while frontier:
            current = frontier.pop()
            for nxt in tree.neighbors(current):
                if nxt in hull and nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        assert seen == set(hull)

    @given(trees_with_vertex_choices(n_choices=3))
    def test_hull_is_convex(self, tree_and_anchors):
        """The hull contains the path between any two of its vertices."""
        tree, anchors = tree_and_anchors
        hull = sorted(convex_hull(tree, anchors))
        for u in hull[:4]:
            for v in hull[-4:]:
                assert set(path_between(tree, u, v).vertices) <= set(hull)


class TestDerivedHelpers:
    def test_hull_is_path_true_on_path(self):
        tree = path_tree(5)
        names = tree.vertices
        assert hull_is_path(tree, [names[0], names[4]])

    def test_hull_is_path_false_on_star_branches(self):
        tree = star_tree(3)
        leaves = tree.vertices[1:]
        assert not hull_is_path(tree, list(leaves))

    def test_induced_subtree(self):
        tree = figure1_tree()
        sub = induced_subtree(tree, ["u1", "u2", "u3"])
        assert set(sub.vertices) == {"u1", "u2", "u3", "u4", "u5"}
        assert sub.adjacent("u4", "u5")

    def test_induced_subtree_single_vertex(self):
        tree = path_tree(3)
        sub = induced_subtree(tree, [tree.vertices[1]])
        assert sub.n_vertices == 1

    def test_steiner_diameter(self):
        tree = path_tree(10)
        names = tree.vertices
        assert steiner_diameter(tree, [names[2], names[7]]) == 5
        assert steiner_diameter(tree, [names[4]]) == 0

    @given(trees_with_vertex_choices(n_choices=3))
    def test_steiner_diameter_bounded_by_tree_diameter(self, tree_and_anchors):
        tree, anchors = tree_and_anchors
        assert steiner_diameter(tree, anchors) <= diameter(tree)
