"""Unit tests for the LabeledTree data structure."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import LabeledTree, NotATreeError

from ..strategies import small_trees


class TestConstruction:
    def test_single_vertex(self):
        tree = LabeledTree(vertices=["a"])
        assert tree.n_vertices == 1
        assert tree.vertices == ("a",)
        assert tree.root_label == "a"
        assert list(tree.edges()) == []

    def test_simple_edge(self):
        tree = LabeledTree(edges=[("b", "a")])
        assert tree.n_vertices == 2
        assert tree.vertices == ("a", "b")
        assert list(tree.edges()) == [("a", "b")]

    def test_empty_rejected(self):
        with pytest.raises(NotATreeError):
            LabeledTree()

    def test_self_loop_rejected(self):
        with pytest.raises(NotATreeError, match="self-loop"):
            LabeledTree(edges=[("a", "a")])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(NotATreeError, match="duplicate"):
            LabeledTree(edges=[("a", "b"), ("b", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(NotATreeError):
            LabeledTree(edges=[("a", "b"), ("b", "c"), ("c", "a")])

    def test_disconnected_rejected(self):
        with pytest.raises(NotATreeError):
            LabeledTree(edges=[("a", "b"), ("c", "d")])

    def test_disconnected_via_extra_vertex_rejected(self):
        with pytest.raises(NotATreeError):
            LabeledTree(edges=[("a", "b")], vertices=["z"])

    def test_extra_vertices_merge_with_edges(self):
        tree = LabeledTree(edges=[("a", "b")], vertices=["a", "b"])
        assert tree.n_vertices == 2

    def test_integer_labels(self):
        tree = LabeledTree(edges=[(2, 1), (2, 3)])
        assert tree.root_label == 1
        assert tree.neighbors(2) == (1, 3)


class TestAccessors:
    def test_root_is_lowest_label(self):
        tree = LabeledTree(edges=[("m", "z"), ("m", "b"), ("b", "a")])
        assert tree.root_label == "a"

    def test_neighbors_sorted(self):
        tree = LabeledTree(edges=[("c", "z"), ("c", "a"), ("c", "m")])
        assert tree.neighbors("c") == ("a", "m", "z")

    def test_degree_and_leaves(self):
        tree = LabeledTree(edges=[("a", "b"), ("b", "c"), ("b", "d")])
        assert tree.degree("b") == 3
        assert tree.degree("a") == 1
        assert tree.leaves() == ("a", "c", "d")

    def test_single_vertex_is_leaf(self):
        assert LabeledTree(vertices=["x"]).leaves() == ("x",)

    def test_contains_len_iter(self):
        tree = LabeledTree(edges=[("a", "b"), ("b", "c")])
        assert "a" in tree and "q" not in tree
        assert len(tree) == 3
        assert list(tree) == ["a", "b", "c"]

    def test_adjacent(self):
        tree = LabeledTree(edges=[("a", "b"), ("b", "c")])
        assert tree.adjacent("a", "b")
        assert not tree.adjacent("a", "c")

    def test_require_vertex(self):
        tree = LabeledTree(vertices=["a"])
        with pytest.raises(KeyError):
            tree.require_vertex("zzz")


class TestComponentsWithout:
    def test_removing_center_of_star(self):
        tree = LabeledTree(edges=[("c", "a"), ("c", "b"), ("c", "d")])
        components = tree.components_without("c")
        assert sorted(sorted(comp) for comp in components) == [
            ["a"],
            ["b"],
            ["d"],
        ]

    def test_removing_leaf(self):
        tree = LabeledTree(edges=[("a", "b"), ("b", "c")])
        components = tree.components_without("a")
        assert len(components) == 1
        assert components[0] == frozenset({"b", "c"})

    def test_removing_middle_of_path(self):
        tree = LabeledTree(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        components = tree.components_without("b")
        assert frozenset({"a"}) in components
        assert frozenset({"c", "d"}) in components

    @given(small_trees(min_vertices=2))
    def test_components_partition_remaining_vertices(self, tree):
        for vertex in tree.vertices:
            components = tree.components_without(vertex)
            union = set()
            total = 0
            for comp in components:
                union |= comp
                total += len(comp)
            assert union == set(tree.vertices) - {vertex}
            assert total == len(union)  # disjoint

    @given(small_trees(min_vertices=2))
    def test_one_component_per_neighbor(self, tree):
        for vertex in tree.vertices:
            assert len(tree.components_without(vertex)) == tree.degree(vertex)


class TestEqualityAndCopies:
    def test_equality_is_structural(self):
        a = LabeledTree(edges=[("a", "b"), ("b", "c")])
        b = LabeledTree(edges=[("b", "c"), ("a", "b")])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = LabeledTree(edges=[("a", "b"), ("b", "c")])
        b = LabeledTree(edges=[("a", "b"), ("a", "c")])
        assert a != b

    def test_edge_list_round_trip(self):
        tree = LabeledTree(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        assert LabeledTree(edges=tree.to_edge_list()) == tree

    def test_from_parent_map(self):
        tree = LabeledTree.from_parent_map({"b": "a", "c": "a", "d": "b"})
        assert tree.n_vertices == 4
        assert tree.adjacent("d", "b")

    def test_relabel(self):
        tree = LabeledTree(edges=[("a", "b"), ("b", "c")])
        renamed = tree.relabel({"a": "x", "b": "y", "c": "z"})
        assert renamed.adjacent("x", "y") and renamed.adjacent("y", "z")

    def test_relabel_single_vertex(self):
        tree = LabeledTree(vertices=["a"])
        assert tree.relabel({"a": "q"}).vertices == ("q",)

    def test_relabel_requires_injective(self):
        tree = LabeledTree(edges=[("a", "b")])
        with pytest.raises(ValueError, match="injective"):
            tree.relabel({"a": "x", "b": "x"})

    @given(small_trees())
    def test_repr_mentions_size(self, tree):
        assert str(tree.n_vertices) in repr(tree)
