"""Tests for vertex-onto-path projection (Section 5, Figure 2, Lemma 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import (
    LabeledTree,
    TreePath,
    convex_hull,
    diameter_path,
    distance,
    path_tree,
    project_all,
    project_onto_path,
    projection_distance,
)

from ..strategies import small_trees, trees_with_vertex_choices


def figure2_tree():
    """The tree of Figure 2: a spine v1..v8 with u1, u2, u3 hanging off.

    proj(u1) = v3, proj(u2) = v4, proj(u3) = v6.
    """
    spine = [f"v{i}" for i in range(1, 9)]
    edges = [(spine[i], spine[i + 1]) for i in range(7)]
    edges += [("v3", "u1"), ("v4", "x1"), ("x1", "u2"), ("v6", "u3")]
    return LabeledTree(edges=edges), TreePath(spine)


class TestFigure2:
    def test_projections_match_paper(self):
        tree, spine = figure2_tree()
        assert project_onto_path(tree, "u1", spine) == "v3"
        assert project_onto_path(tree, "u2", spine) == "v4"
        assert project_onto_path(tree, "u3", spine) == "v6"

    def test_project_all(self):
        tree, spine = figure2_tree()
        assert project_all(tree, ["u1", "u2", "u3"], spine) == {
            "u1": "v3",
            "u2": "v4",
            "u3": "v6",
        }

    def test_projection_distances(self):
        tree, spine = figure2_tree()
        assert projection_distance(tree, "u1", spine) == 1
        assert projection_distance(tree, "u2", spine) == 2
        assert projection_distance(tree, "v5", spine) == 0


class TestProjectionProperties:
    def test_vertex_on_path_projects_to_itself(self):
        tree = path_tree(5)
        path = TreePath(tree.vertices)
        for v in tree.vertices:
            assert project_onto_path(tree, v, path) == v

    def test_unknown_vertex_rejected(self):
        tree = path_tree(3)
        path = TreePath(tree.vertices)
        with pytest.raises(KeyError):
            project_onto_path(tree, "zzz", path)

    @given(small_trees(min_vertices=2))
    def test_projection_onto_diameter_path_minimises_distance(self, tree):
        path = diameter_path(tree)
        for v in tree.vertices:
            proj = project_onto_path(tree, v, path)
            best = min(distance(tree, v, p) for p in path)
            assert distance(tree, v, proj) == best

    @given(small_trees(min_vertices=2))
    def test_projection_is_unique_minimiser(self, tree):
        path = diameter_path(tree)
        for v in tree.vertices:
            proj = project_onto_path(tree, v, path)
            best = distance(tree, v, proj)
            minimisers = [p for p in path if distance(tree, v, p) == best]
            assert minimisers == [proj]

    @given(small_trees(min_vertices=2))
    def test_projection_distance_matches(self, tree):
        path = diameter_path(tree)
        for v in tree.vertices:
            proj = project_onto_path(tree, v, path)
            assert projection_distance(tree, v, path) == distance(tree, v, proj)


class TestLemma1:
    """proj_P(v) ∈ V(P) ∩ ⟨S⟩ whenever v ∈ S and P intersects ⟨S⟩."""

    @given(trees_with_vertex_choices(n_choices=3))
    def test_projection_stays_in_hull(self, tree_and_anchors):
        tree, anchors = tree_and_anchors
        path = diameter_path(tree)
        hull = convex_hull(tree, anchors)
        if not (set(path.vertices) & hull):
            return  # Lemma 1's hypothesis V(P) ∩ ⟨S⟩ ≠ ∅ fails; skip
        for v in anchors:
            proj = project_onto_path(tree, v, path)
            assert proj in hull
            assert proj in path

    def test_counterexample_without_hypothesis(self):
        """If the path misses the hull, the projection may leave the hull —
        Lemma 1's hypothesis is necessary."""
        #   a - b - c
        #       |
        #       d
        tree = LabeledTree(edges=[("a", "b"), ("b", "c"), ("b", "d")])
        path = TreePath(["c"])  # a trivial path avoiding hull {a}
        proj = project_onto_path(tree, "a", path)
        assert proj == "c"
        assert proj not in convex_hull(tree, ["a"])
