"""Tests for the tree-family generators used by benchmarks and tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import (
    binary_tree,
    broom_tree,
    caterpillar_tree,
    diameter,
    figure_tree,
    path_tree,
    random_tree,
    spider_tree,
    star_tree,
    tree_from_pruefer,
)


class TestPathTree:
    def test_sizes(self):
        assert path_tree(1).n_vertices == 1
        assert path_tree(5).n_vertices == 5

    def test_diameter(self):
        assert diameter(path_tree(10)) == 9

    def test_labels_sort_numerically(self):
        tree = path_tree(12)
        assert tree.vertices == tuple(sorted(tree.vertices))
        assert tree.root_label == tree.vertices[0]

    def test_invalid(self):
        with pytest.raises(ValueError):
            path_tree(0)


class TestStarTree:
    def test_shape(self):
        tree = star_tree(6)
        assert tree.n_vertices == 7
        assert tree.degree(tree.vertices[0]) == 6
        assert diameter(tree) == 2

    def test_single_leaf(self):
        assert star_tree(1).n_vertices == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            star_tree(0)


class TestBinaryTree:
    def test_depth0(self):
        assert binary_tree(0).n_vertices == 1

    def test_sizes(self):
        assert binary_tree(3).n_vertices == 15

    def test_diameter(self):
        assert diameter(binary_tree(3)) == 6  # leaf to leaf through the root

    def test_degrees(self):
        tree = binary_tree(2)
        root = tree.vertices[0]
        assert tree.degree(root) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            binary_tree(-1)


class TestCaterpillar:
    def test_size(self):
        tree = caterpillar_tree(4, legs_per_vertex=2)
        assert tree.n_vertices == 12

    def test_no_legs_is_path(self):
        tree = caterpillar_tree(5, legs_per_vertex=0)
        assert diameter(tree) == 4

    def test_diameter_with_legs(self):
        tree = caterpillar_tree(4, legs_per_vertex=1)
        assert diameter(tree) == 5  # leg — spine — leg

    def test_invalid(self):
        with pytest.raises(ValueError):
            caterpillar_tree(0)


class TestSpiderAndBroom:
    def test_spider_size(self):
        tree = spider_tree(3, 4)
        assert tree.n_vertices == 13
        assert tree.degree(tree.vertices[0]) == 3

    def test_spider_diameter(self):
        assert diameter(spider_tree(3, 4)) == 8

    def test_spider_one_arm_is_path(self):
        assert diameter(spider_tree(1, 5)) == 5

    def test_broom_shape(self):
        tree = broom_tree(4, 3)
        assert tree.n_vertices == 8
        assert diameter(tree) == 5

    def test_invalid(self):
        with pytest.raises(ValueError):
            spider_tree(0, 1)
        with pytest.raises(ValueError):
            broom_tree(1, 0)


class TestRandomAndPruefer:
    @given(st.integers(min_value=1, max_value=40), st.integers(0, 10))
    def test_random_tree_size(self, n, seed):
        assert random_tree(n, seed).n_vertices == n

    def test_random_tree_deterministic_per_seed(self):
        assert random_tree(20, seed=5) == random_tree(20, seed=5)

    def test_random_tree_varies_with_seed(self):
        trees = {random_tree(12, seed=s) for s in range(8)}
        assert len(trees) > 1

    @given(
        st.lists(st.integers(min_value=0, max_value=5), min_size=4, max_size=4)
    )
    def test_pruefer_decoding_size(self, sequence):
        assert tree_from_pruefer(sequence).n_vertices == 6

    def test_pruefer_star(self):
        # all entries equal → star centred at that vertex
        tree = tree_from_pruefer([0, 0, 0])
        center = tree.vertices[0]
        assert tree.degree(center) == 4

    def test_pruefer_path(self):
        tree = tree_from_pruefer([1, 2])
        assert diameter(tree) == 3

    def test_pruefer_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            tree_from_pruefer([9])


class TestFigureTree:
    def test_structure(self):
        tree = figure_tree()
        assert tree.n_vertices == 8
        assert tree.neighbors("v2") == ("v1", "v3", "v4", "v5")
        assert diameter(tree) == 4
