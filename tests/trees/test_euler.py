"""Tests for ListConstruction — the Euler-tour list of Section 6 (Lemma 2)."""

import pytest
from hypothesis import given

from repro.trees import (
    LabeledTree,
    RootedTree,
    figure_tree,
    list_construction,
    path_tree,
    star_tree,
)

from ..strategies import small_trees


class TestFigure3:
    """The worked example in the paper's Section 6."""

    def test_exact_list(self):
        euler = list_construction(figure_tree(), root="v1")
        assert list(euler.entries) == [
            "v1", "v2", "v3", "v6", "v3", "v7", "v3", "v2",
            "v4", "v8", "v4", "v2", "v5", "v2", "v1",
        ]

    def test_occurrence_sets_match_paper(self):
        """Figure 4's discussion: L(v3) = {3,5,7}, L(v6) = {4}, L(v5) = {13},
        L(v4) = {9,11}, L(v8) = {10} — 1-based in the paper, 0-based here."""
        euler = list_construction(figure_tree())
        assert euler.occurrences("v3") == (2, 4, 6)
        assert euler.occurrences("v6") == (3,)
        assert euler.occurrences("v5") == (12,)
        assert euler.occurrences("v4") == (8, 10)
        assert euler.occurrences("v8") == (9,)

    def test_invalid_vertices_inside_honest_range(self):
        """Figure 4: with honest inputs v3, v6, v5 the indices of v4 and v8
        lie strictly inside the honest index range."""
        euler = list_construction(figure_tree())
        honest_indices = [euler.first_occurrence(v) for v in ("v3", "v6", "v5")]
        lo, hi = min(honest_indices), max(honest_indices)
        for invalid in ("v4", "v8"):
            for index in euler.occurrences(invalid):
                assert lo <= index <= hi


class TestBasics:
    def test_single_vertex(self):
        euler = list_construction(LabeledTree(vertices=["a"]))
        assert list(euler.entries) == ["a"]
        assert euler.occurrences("a") == (0,)

    def test_edge(self):
        euler = list_construction(LabeledTree(edges=[("a", "b")]))
        assert list(euler.entries) == ["a", "b", "a"]

    def test_path(self):
        euler = list_construction(path_tree(3))
        names = path_tree(3).vertices
        assert list(euler.entries) == [
            names[0], names[1], names[2], names[1], names[0],
        ]

    def test_star_children_in_label_order(self):
        tree = star_tree(3)
        euler = list_construction(tree)
        center, leaves = tree.vertices[0], tree.vertices[1:]
        expected = [center]
        for leaf in leaves:
            expected += [leaf, center]
        assert list(euler.entries) == expected

    def test_custom_root(self):
        euler = list_construction(figure_tree(), root="v2")
        assert euler.entries[0] == "v2"
        assert euler.entries[-1] == "v2"

    def test_unknown_vertex_raises(self):
        euler = list_construction(path_tree(3))
        with pytest.raises(KeyError):
            euler.occurrences("zzz")

    def test_getitem_and_len(self):
        euler = list_construction(figure_tree())
        assert euler[0] == "v1"
        assert len(euler) == 15

    def test_deterministic_across_parties(self):
        """All honest parties must compute the same list."""
        a = list_construction(figure_tree())
        b = list_construction(figure_tree())
        assert a.entries == b.entries


class TestLemma2Properties:
    @given(small_trees(min_vertices=2))
    def test_property1_consecutive_entries_adjacent(self, tree):
        euler = list_construction(tree)
        entries = euler.entries
        for i in range(len(entries) - 1):
            assert tree.adjacent(entries[i], entries[i + 1])

    @given(small_trees())
    def test_property2_length_and_coverage(self, tree):
        euler = list_construction(tree)
        assert len(euler) <= 2 * tree.n_vertices
        for vertex in tree.vertices:
            assert euler.occurrences(vertex)

    @given(small_trees())
    def test_property3_subtree_interval(self, tree):
        euler = list_construction(tree)
        rooted = euler.rooted
        for v in tree.vertices:
            subtree = set(rooted.subtree_vertices(v))
            lo, hi = euler.subtree_interval(v)
            for u in tree.vertices:
                in_interval = all(lo <= i <= hi for i in euler.occurrences(u))
                assert in_interval == (u in subtree)

    @given(small_trees())
    def test_property3_via_helper(self, tree):
        euler = list_construction(tree)
        rooted = euler.rooted
        for v in tree.vertices:
            subtree = set(rooted.subtree_vertices(v))
            for u in tree.vertices:
                assert euler.vertex_in_subtree(u, v) == (u in subtree)

    @given(small_trees(min_vertices=2))
    def test_property4_lca_between_any_index_pair(self, tree):
        euler = list_construction(tree)
        rooted = euler.rooted
        vertices = tree.vertices
        for v in vertices:
            for u in vertices:
                lca = rooted.lca(v, u)
                for i in euler.occurrences(v):
                    for j in euler.occurrences(u):
                        lo, hi = min(i, j), max(i, j)
                        window = set(euler.entries[lo : hi + 1])
                        assert lca in window

    @given(small_trees())
    def test_exact_length_formula(self, tree):
        """This DFS records each vertex once per incident edge traversal:
        |L| = 2|V| − 1 exactly (stronger than Lemma 2's ≤ 2|V|)."""
        euler = list_construction(tree)
        assert len(euler) == 2 * tree.n_vertices - 1

    @given(small_trees())
    def test_endpoints_are_root(self, tree):
        euler = list_construction(tree)
        assert euler.entries[0] == euler.rooted.root
        assert euler.entries[-1] == euler.rooted.root
