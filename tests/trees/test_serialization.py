"""Tests for tree serialization (JSON canonical form, DOT export)."""

import json

import pytest
from hypothesis import given

from repro.trees import (
    LabeledTree,
    figure_tree,
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_dot,
    tree_to_json,
)

from ..strategies import small_trees


class TestJsonRoundTrip:
    def test_figure_tree(self):
        tree = figure_tree()
        assert tree_from_json(tree_to_json(tree)) == tree

    def test_single_vertex(self):
        tree = LabeledTree(vertices=["solo"])
        assert tree_from_json(tree_to_json(tree)) == tree

    @given(small_trees())
    def test_round_trip_property(self, tree):
        assert tree_from_json(tree_to_json(tree)) == tree

    @given(small_trees())
    def test_deterministic_serialization(self, tree):
        """Equal trees produce byte-identical JSON — required for the
        'publicly known tree' to actually be common knowledge."""
        rebuilt = tree_from_json(tree_to_json(tree))
        assert tree_to_json(rebuilt) == tree_to_json(tree)

    def test_schema_tag_present(self):
        data = tree_to_dict(figure_tree())
        assert data["schema"] == "repro/labeled-tree/v1"

    def test_pretty_printing(self):
        text = tree_to_json(figure_tree(), indent=2)
        assert "\n" in text
        json.loads(text)


class TestValidation:
    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            tree_from_dict({"schema": "nope", "vertices": [], "edges": []})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            tree_from_dict([1, 2, 3])

    def test_malformed_edge_rejected(self):
        with pytest.raises(ValueError, match="edge"):
            tree_from_dict(
                {
                    "schema": "repro/labeled-tree/v1",
                    "vertices": ["a", "b"],
                    "edges": [["a"]],
                }
            )

    def test_non_tree_payload_rejected(self):
        from repro.trees import NotATreeError

        with pytest.raises(NotATreeError):
            tree_from_dict(
                {
                    "schema": "repro/labeled-tree/v1",
                    "vertices": ["a", "b", "c"],
                    "edges": [["a", "b"], ["b", "c"], ["c", "a"]],
                }
            )


class TestDot:
    def test_structure(self):
        dot = tree_to_dot(figure_tree())
        assert dot.startswith("graph")
        assert '"v1" -- "v2"' in dot
        assert dot.rstrip().endswith("}")

    def test_highlighting(self):
        dot = tree_to_dot(figure_tree(), highlight={"v3": "green"})
        assert 'fillcolor="green"' in dot

    def test_every_vertex_listed(self):
        tree = figure_tree()
        dot = tree_to_dot(tree)
        for vertex in tree.vertices:
            assert f'"{vertex}"' in dot
