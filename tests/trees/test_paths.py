"""Tests for paths, distances, and diameters (Section 2 notation)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trees import (
    LabeledTree,
    TreePath,
    diameter,
    diameter_path,
    distance,
    distances_from,
    eccentricity,
    farthest_vertex,
    is_path_in_tree,
    path_between,
    path_tree,
    star_tree,
)

from ..strategies import small_trees


class TestTreePath:
    def test_single_vertex_path(self):
        path = TreePath(["a"])
        assert path.length == 0
        assert len(path) == 1
        assert path.start == path.end == "a"

    def test_basic_accessors(self):
        path = TreePath(["a", "b", "c"])
        assert path.length == 2
        assert path[1] == "b"
        assert "b" in path and "z" not in path
        assert list(path) == ["a", "b", "c"]
        assert path.position_of("c") == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TreePath([])

    def test_repeated_vertex_rejected(self):
        with pytest.raises(ValueError):
            TreePath(["a", "b", "a"])

    def test_position_of_missing(self):
        with pytest.raises(KeyError):
            TreePath(["a"]).position_of("b")

    def test_extended(self):
        path = TreePath(["a", "b"]).extended("c")
        assert path.vertices == ("a", "b", "c")

    def test_extended_rejects_duplicate(self):
        with pytest.raises(ValueError):
            TreePath(["a", "b"]).extended("a")

    def test_reversed(self):
        assert TreePath(["a", "b", "c"]).reversed().vertices == ("c", "b", "a")

    def test_prefix(self):
        path = TreePath(["a", "b", "c", "d"])
        assert path.prefix(2).vertices == ("a", "b")
        with pytest.raises(ValueError):
            path.prefix(0)
        with pytest.raises(ValueError):
            path.prefix(5)

    def test_is_prefix_of(self):
        short = TreePath(["a", "b"])
        long = TreePath(["a", "b", "c"])
        assert short.is_prefix_of(long)
        assert not long.is_prefix_of(short)
        assert short.is_prefix_of(short)

    def test_canonical_orients_lower_endpoint_first(self):
        assert TreePath(["z", "m", "a"]).canonical().start == "a"
        assert TreePath(["a", "m", "z"]).canonical().start == "a"

    def test_equality_and_hash(self):
        assert TreePath(["a", "b"]) == TreePath(["a", "b"])
        assert TreePath(["a", "b"]) != TreePath(["b", "a"])
        assert hash(TreePath(["a"])) == hash(TreePath(["a"]))


class TestPathBetween:
    def test_same_vertex(self):
        tree = LabeledTree(edges=[("a", "b")])
        assert path_between(tree, "a", "a").vertices == ("a",)

    def test_on_a_path_tree(self):
        tree = path_tree(5)
        names = tree.vertices
        path = path_between(tree, names[0], names[4])
        assert path.vertices == tuple(names)

    def test_through_branch_vertex(self):
        tree = LabeledTree(edges=[("a", "c"), ("b", "c"), ("c", "d")])
        assert path_between(tree, "a", "b").vertices == ("a", "c", "b")

    @given(small_trees(min_vertices=2))
    def test_endpoints_and_adjacency(self, tree):
        u, v = tree.vertices[0], tree.vertices[-1]
        path = path_between(tree, u, v)
        assert path.start == u and path.end == v
        assert is_path_in_tree(tree, path)

    @given(small_trees(min_vertices=2))
    def test_symmetry_of_distance(self, tree):
        u, v = tree.vertices[0], tree.vertices[-1]
        assert distance(tree, u, v) == distance(tree, v, u)

    @given(small_trees(min_vertices=3))
    def test_triangle_inequality(self, tree):
        a, b, c = tree.vertices[0], tree.vertices[1], tree.vertices[2]
        assert distance(tree, a, c) <= distance(tree, a, b) + distance(tree, b, c)


class TestDistancesAndDiameter:
    def test_distances_from(self):
        tree = path_tree(4)
        names = tree.vertices
        dist = distances_from(tree, names[0])
        assert [dist[v] for v in names] == [0, 1, 2, 3]

    def test_eccentricity(self):
        tree = star_tree(5)
        center = tree.vertices[0]
        assert eccentricity(tree, center) == 1
        assert eccentricity(tree, tree.vertices[1]) == 2

    def test_farthest_vertex_tie_break(self):
        tree = star_tree(3)
        winner, dist = farthest_vertex(tree, tree.vertices[1])
        assert dist == 2
        assert winner == tree.vertices[2]  # lowest label among the leaves

    def test_diameter_of_path(self):
        assert diameter(path_tree(10)) == 9

    def test_diameter_of_star(self):
        assert diameter(star_tree(7)) == 2

    def test_diameter_of_single_vertex(self):
        assert diameter(LabeledTree(vertices=["a"])) == 0

    def test_diameter_path_is_canonical(self):
        tree = path_tree(6)
        longest = diameter_path(tree)
        assert longest.start <= longest.end
        assert longest.length == 5

    @given(small_trees(min_vertices=1))
    def test_diameter_matches_brute_force(self, tree):
        brute = 0
        for u in tree.vertices:
            for v in tree.vertices:
                brute = max(brute, distance(tree, u, v))
        assert diameter(tree) == brute

    @given(small_trees(min_vertices=2))
    def test_diameter_path_length_equals_diameter(self, tree):
        assert diameter_path(tree).length == diameter(tree)


class TestIsPathInTree:
    def test_detects_non_edges(self):
        tree = path_tree(4)
        names = tree.vertices
        assert not is_path_in_tree(tree, TreePath([names[0], names[2]]))

    def test_detects_foreign_vertices(self):
        tree = path_tree(3)
        assert not is_path_in_tree(tree, TreePath(["zzz"]))
