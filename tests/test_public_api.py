"""Tests for the public API surface: exports exist, docs exist, no drift."""

import importlib
import os
import subprocess
import sys

import pytest

PACKAGES = [
    "repro",
    "repro.trees",
    "repro.net",
    "repro.adversary",
    "repro.protocols",
    "repro.core",
    "repro.baselines",
    "repro.lowerbound",
    "repro.analysis",
    "repro.observability",
    "repro.asynchrony",
    "repro.authenticated",
]


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), package_name
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_no_duplicate_exports(self, package_name):
        package = importlib.import_module(package_name)
        assert len(package.__all__) == len(set(package.__all__))

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_package_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__.strip()) > 20

    def test_version(self):
        import repro

        assert repro.__version__

    def test_public_items_have_docstrings(self):
        """Every re-exported public class/function carries a docstring."""
        import repro

        missing = []
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            item = getattr(repro, name)
            if callable(item) and not (item.__doc__ or "").strip():
                missing.append(name)
        assert not missing, f"undocumented public items: {missing}"


REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FAST_EXAMPLES = [
    "quickstart.py",
    "config_rollout.py",
    "lower_bound_demo.py",
    "transcript_debugging.py",
]


class TestExamplesRun:
    """Deliverable (b): the example scripts must stay runnable end to end.

    The slower demos (robot_gathering, clock_sync, async_vs_sync) are
    exercised by the benchmark suite's equivalents; the fast ones run here
    as subprocesses so import-time or API drift breaks the build."""

    @pytest.mark.parametrize("script", FAST_EXAMPLES)
    def test_example(self, script):
        path = os.path.join(REPO_ROOT, "examples", script)
        result = subprocess.run(
            [sys.executable, path],
            capture_output=True,
            text=True,
            timeout=180,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip()


class TestDocumentationFiles:
    @pytest.mark.parametrize(
        "filename",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/PROTOCOL_WALKTHROUGH.md"],
    )
    def test_present_and_substantial(self, filename):
        path = os.path.join(REPO_ROOT, filename)
        assert os.path.exists(path), filename
        with open(path) as handle:
            assert len(handle.read()) > 1000
