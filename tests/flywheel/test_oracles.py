"""The differential oracle matrix, point by point."""

from __future__ import annotations

import pytest

from repro.analysis.spec import ScenarioSpec
from repro.flywheel.oracles import (
    FLYWHEEL_ORACLES,
    batch_replayable,
    diverging_oracles,
    evaluate_point,
    resolve_perturb,
)

pytest.importorskip("numpy")


def tree_spec(**overrides):
    fields = dict(
        protocol="tree-aa", n=5, t=1, tree="path:6", adversary="silent", seed=11
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestHealthyPoints:
    def test_clean_tree_point_is_green_on_every_oracle(self):
        row = evaluate_point(tree_spec())
        assert row["ok"]
        assert set(row["oracles"]) == set(FLYWHEEL_ORACLES)
        statuses = {
            name: cell["status"] for name, cell in row["oracles"].items()
        }
        assert statuses["execution"] == "ok"
        assert statuses["backend-parity"] == "ok"
        assert statuses["cross-protocol"] == "ok"
        assert statuses["round-bound"] == "ok"
        # record=False: nothing for the metrics oracle to compare.
        assert statuses["metrics-parity"] == "skipped"
        assert diverging_oracles(row) == ()

    def test_recorded_point_gets_a_metrics_verdict(self):
        row = evaluate_point(tree_spec(record=True))
        assert row["oracles"]["metrics-parity"]["status"] == "ok"

    def test_real_point_skips_the_tree_only_oracles(self):
        spec = ScenarioSpec(
            protocol="real-aa", n=4, t=0, adversary="none",
            known_range=8.0, seed=3,
        )
        row = evaluate_point(spec)
        assert row["ok"]
        assert row["oracles"]["cross-protocol"]["status"] == "skipped"
        assert row["oracles"]["round-bound"]["status"] == "ok"

    def test_reference_only_adversary_skips_the_differential_pair(self):
        spec = tree_spec(adversary="noise:3")
        assert not batch_replayable(spec)
        row = evaluate_point(spec)
        assert row["oracles"]["backend-parity"]["status"] == "skipped"
        assert row["oracles"]["metrics-parity"]["status"] == "skipped"
        # The reference-side oracles still ran.
        assert row["oracles"]["execution"]["status"] == "ok"

    def test_row_carries_the_reference_outcome(self):
        row = evaluate_point(tree_spec())
        assert row["rounds"] >= 1
        assert row["verdicts"]["terminated"]


class TestPerturbedPoints:
    def test_round_perturbation_fires_backend_parity(self):
        row = evaluate_point(
            tree_spec(), "repro.flywheel.selftest:perturb_batch_rounds"
        )
        assert not row["ok"]
        assert diverging_oracles(row) == ("backend-parity",)
        assert "rounds" in row["oracles"]["backend-parity"]["detail"]

    def test_verdict_perturbation_fires_backend_parity(self):
        row = evaluate_point(
            tree_spec(), "repro.flywheel.selftest:perturb_batch_verdicts"
        )
        assert "backend-parity" in diverging_oracles(row)

    def test_perturbation_is_recorded_in_the_row(self):
        seam = "repro.flywheel.selftest:perturb_batch_rounds"
        row = evaluate_point(tree_spec(), seam)
        assert row["perturb"] == seam

    def test_unresolvable_seam_is_loud(self):
        with pytest.raises((ImportError, ValueError)):
            resolve_perturb("repro.flywheel.selftest:no_such_function")


class TestDeterminism:
    def test_rows_are_reproducible(self):
        spec = tree_spec(adversary="chaos:99", record=True)
        assert evaluate_point(spec) == evaluate_point(spec)
