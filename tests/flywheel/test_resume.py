"""Kill-and-resume: a SIGKILLed campaign loses no point and repeats none.

The exactly-once contract, end to end: a real ``repro flywheel run``
subprocess is SIGKILLed mid-campaign, then ``repro flywheel resume``
finishes the ledger — and the *parsed* ledger must hold every stream
index exactly once.  (A point whose record the kill tore in half is not
in the parsed ledger, so the resume re-runs it; both halves of that
sentence are load-bearing and both are asserted.)
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from collections import Counter

import pytest

from repro.flywheel.ledger import load_state, read_ledger

pytest.importorskip("numpy")

SEED = 13
COUNT = 150
SHARD = 5


def flywheel_argv(command, ledger, cache_dir):
    return [
        sys.executable,
        "-m",
        "repro",
        "flywheel",
        command,
        "--seed",
        str(SEED),
        "--count",
        str(COUNT),
        "--shard-size",
        str(SHARD),
        "--ledger",
        ledger,
        "--cache-dir",
        cache_dir,
    ]


def subprocess_env():
    src = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "src"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p
    )
    return env


def wait_for(predicate, timeout=60.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_sigkilled_run_resumes_exactly_once(tmp_path):
    ledger = str(tmp_path / "ledger.jsonl")
    cache_dir = str(tmp_path / "cache")

    proc = subprocess.Popen(
        flywheel_argv("run", ledger, cache_dir),
        env=subprocess_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # Let the campaign checkpoint a few shards, then kill it cold
        # mid-flight — no signal handler, no flush, no goodbye.
        assert wait_for(
            lambda: len(load_state(ledger).executed) >= 3 * SHARD
        ), "campaign never reached three checkpointed shards"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=20)

    interrupted = load_state(ledger)
    executed_before_kill = set(interrupted.executed)
    assert not interrupted.done, "the kill landed after completion"
    assert executed_before_kill, "no progress survived the kill"
    assert len(executed_before_kill) < COUNT, (
        "campaign finished before the kill; lower the wait threshold"
    )

    resumed = subprocess.run(
        flywheel_argv("resume", ledger, cache_dir),
        env=subprocess_env(),
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert resumed.returncode == 0, resumed.stdout + resumed.stderr

    # Exactly-once, from the ledger itself: every index present, none
    # duplicated, and the campaign marked complete.
    state = load_state(ledger)
    assert state.done
    assert state.executed == set(range(COUNT))
    counts = Counter(
        record["index"]
        for record in read_ledger(ledger)
        if record.get("type") == "point"
    )
    assert set(counts) == set(range(COUNT))
    duplicated = {index: n for index, n in counts.items() if n != 1}
    assert not duplicated, f"points recorded more than once: {duplicated}"

    # The resume continued the kill's progress rather than restarting.
    assert executed_before_kill <= state.executed
    summary = resumed.stdout.splitlines()[0]
    assert f"{len(executed_before_kill)} resumed from ledger" in summary


def test_torn_tail_point_reruns_and_lands_once(tmp_path):
    """Unit-level twin of the subprocess test: tear the last record in
    half (byte-exactly what SIGKILL-during-append leaves) and resume."""
    from repro.flywheel import FlywheelConfig, run_flywheel

    ledger = str(tmp_path / "ledger.jsonl")
    cfg = FlywheelConfig(
        seed=SEED,
        count=12,
        ledger_path=ledger,
        shard_size=4,
        no_cache=True,
    )
    run_flywheel(cfg)
    lines = open(ledger).read().splitlines(keepends=True)
    # Drop the done record, tear the final point record mid-JSON.
    body = [line for line in lines if '"type": "done"' not in line]
    with open(ledger, "w") as handle:
        handle.writelines(body[:-1])
        handle.write(body[-1][: len(body[-1]) // 2])

    torn = load_state(ledger)
    assert len(torn.executed) == 11

    report = run_flywheel(cfg, resume=True)
    assert report.executed == 1
    state = load_state(ledger)
    assert state.done
    counts = Counter(
        record["index"]
        for record in read_ledger(ledger)
        if record.get("type") == "point"
    )
    assert counts == {index: 1 for index in range(12)}
    assert json.loads(open(ledger).read().splitlines()[-1])["type"] == "done"
