"""The campaign ledger: append-only, torn-tail tolerant, stream-pinned."""

from __future__ import annotations

import json

import pytest

from repro.flywheel.ledger import (
    LedgerError,
    LedgerWriter,
    check_compatible,
    load_state,
    read_ledger,
)


def write_campaign(path, *, count=4, executed=(0, 1), done=False):
    with LedgerWriter(str(path)) as ledger:
        ledger.header(
            seed=7, count=count, shard_size=2, digest="d" * 64, version="x"
        )
        for index in executed:
            ledger.point(index, {"ok": True, "oracles": {}})
        if done:
            ledger.done(executed=len(executed), divergences=0)


class TestReader:
    def test_missing_file_is_an_empty_ledger(self, tmp_path):
        assert read_ledger(str(tmp_path / "nope.jsonl")) == []
        state = load_state(str(tmp_path / "nope.jsonl"))
        assert state.header is None and not state.executed

    def test_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        write_campaign(path, executed=(0, 2), done=False)
        state = load_state(str(path))
        assert state.count == 4
        assert state.executed == {0, 2}
        assert state.remaining() == [1, 3]
        assert not state.done

    def test_done_record_completes_the_campaign(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        write_campaign(path, executed=(0, 1, 2, 3), done=True)
        state = load_state(str(path))
        assert state.done and state.remaining() == []

    def test_torn_tail_is_forgiven(self, tmp_path):
        """A SIGKILL mid-append leaves half a line; the parsed ledger
        simply does not contain that point, so resume re-runs it."""
        path = tmp_path / "ledger.jsonl"
        write_campaign(path, executed=(0, 1))
        with open(path, "a") as handle:
            handle.write('{"type": "point", "index": 2, "ro')
        state = load_state(str(path))
        assert state.executed == {0, 1}
        assert 2 in state.remaining()

    def test_mid_file_garbage_is_loud(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        write_campaign(path, executed=(0,))
        lines = path.read_text().splitlines()
        lines.insert(1, "!corrupted!")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(LedgerError):
            read_ledger(str(path))

    def test_divergences_are_collected_in_order(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        with LedgerWriter(str(path)) as ledger:
            ledger.header(
                seed=7, count=2, shard_size=2, digest="d", version="x"
            )
            ledger.point(0, {"ok": False})
            ledger.divergence(0, {"oracles": ["backend-parity"]})
        state = load_state(str(path))
        assert [d["index"] for d in state.divergences] == [0]
        assert state.divergences[0]["oracles"] == ["backend-parity"]


class TestCompatibility:
    def test_matching_header_is_accepted(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        write_campaign(path)
        state = load_state(str(path))
        check_compatible(state, seed=7, count=4, digest="d" * 64)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seed": 8, "count": 4, "digest": "d" * 64},
            {"seed": 7, "count": 5, "digest": "d" * 64},
            {"seed": 7, "count": 4, "digest": "e" * 64},
        ],
    )
    def test_mismatches_refuse(self, tmp_path, kwargs):
        path = tmp_path / "ledger.jsonl"
        write_campaign(path)
        with pytest.raises(LedgerError):
            check_compatible(load_state(str(path)), **kwargs)

    def test_records_are_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        write_campaign(path, executed=(0, 1), done=True)
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)
