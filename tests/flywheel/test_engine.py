"""The campaign engine: shard, checkpoint, shrink-and-file, self-test.

The oracle self-test satellite lives here: a deliberately perturbed
batch row must be *detected* (backend-parity divergence), *shrunk* (the
delta-debugging passes run under the differential check), and *filed*
(a replayable corpus case with the flywheel's metadata attached).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.spec import ScenarioSpec
from repro.flywheel import (
    FlywheelConfig,
    SelfTestError,
    load_state,
    replay_flywheel_case,
    run_flywheel,
    run_selftest,
)
from repro.resilience import iter_corpus

pytest.importorskip("numpy")

SEED = 7
COUNT = 30


def config(tmp_path, **overrides):
    fields = dict(
        seed=SEED,
        count=COUNT,
        ledger_path=str(tmp_path / "ledger.jsonl"),
        shard_size=10,
        jobs=1,
        no_cache=True,
        corpus_dir=str(tmp_path / "corpus"),
        max_shrink_checks=120,
    )
    fields.update(overrides)
    return FlywheelConfig(**fields)


class TestCleanCampaign:
    def test_campaign_is_green_and_complete(self, tmp_path):
        report = run_flywheel(config(tmp_path))
        assert report.ok
        assert report.executed == COUNT
        state = load_state(str(tmp_path / "ledger.jsonl"))
        assert state.done
        assert state.executed == set(range(COUNT))
        assert state.remaining() == []

    def test_rerun_without_resume_refuses(self, tmp_path):
        run_flywheel(config(tmp_path))
        with pytest.raises(ValueError, match="resume"):
            run_flywheel(config(tmp_path))

    def test_resume_of_a_complete_campaign_is_a_no_op(self, tmp_path):
        run_flywheel(config(tmp_path))
        report = run_flywheel(config(tmp_path), resume=True)
        assert report.executed == 0
        assert report.skipped == COUNT

    def test_mismatched_stream_refuses(self, tmp_path):
        run_flywheel(config(tmp_path))
        from repro.flywheel import LedgerError

        with pytest.raises(LedgerError):
            run_flywheel(config(tmp_path, seed=SEED + 1), resume=True)


class TestInjectedDivergence:
    """The self-test satellite: perturb -> detect -> shrink -> file."""

    @pytest.fixture(scope="class")
    def report(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("selftest")
        return (
            tmp_path,
            run_selftest(
                str(tmp_path / "ledger.jsonl"),
                str(tmp_path / "corpus"),
                seed=SEED,
                count=24,
            ),
        )

    def test_perturbation_is_detected(self, report):
        _, rep = report
        assert any(
            "backend-parity" in d["oracles"] for d in rep.divergences
        )

    def test_divergences_are_shrunk(self, report):
        _, rep = report
        assert any(d.get("shrunk") for d in rep.divergences)

    def test_cases_are_filed_and_replayable(self, report):
        tmp_path, rep = report
        cases = iter_corpus(str(tmp_path / "corpus"))
        assert cases
        for case in cases:
            flywheel = case.extras["flywheel"]
            assert flywheel["oracles"]
            assert flywheel["stream_seed"] == SEED
            # The filed spec must re-fire the same divergence when the
            # recorded seam is re-applied.
            row = replay_flywheel_case(case)
            assert set(flywheel["oracles"]) & set(
                name
                for name, cell in row["oracles"].items()
                if cell["status"] == "divergence"
            )

    def test_filed_files_round_trip_as_plain_json(self, report):
        tmp_path, _ = report
        corpus = str(tmp_path / "corpus")
        for filename in os.listdir(corpus):
            payload = json.loads(open(os.path.join(corpus, filename)).read())
            assert "flywheel" in payload
            ScenarioSpec.from_dict(payload["flywheel"]["spec"])

    def test_ledger_records_the_divergences(self, report):
        tmp_path, rep = report
        state = load_state(str(tmp_path / "ledger.jsonl"))
        assert len(state.divergences) == len(rep.divergences)

    def test_a_blind_selftest_fails_loudly(self, tmp_path):
        """Sanity-check the checker: an identity perturbation (a seam
        that changes nothing — ``builtins:dict`` just copies the row)
        must make the self-test refuse to report success."""
        with pytest.raises(SelfTestError):
            run_selftest(
                str(tmp_path / "ledger.jsonl"),
                str(tmp_path / "corpus"),
                seed=SEED,
                count=6,
                perturbation="builtins:dict",
            )
