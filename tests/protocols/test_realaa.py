"""Tests for RealAA: Theorem 3, Lemma 5, Lemma 6, and the BAD mechanism."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import (
    CrashAdversary,
    PassiveAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis import convergence_factors, honest_value_ranges
from repro.core import run_real_aa
from repro.net import run_protocol
from repro.protocols import RealAAParty, is_real, lemma5_factor, trimmed_mean


class TestHelpers:
    def test_is_real(self):
        assert is_real(1) and is_real(-3.5) and is_real(0)
        assert not is_real(True)
        assert not is_real(float("nan"))
        assert not is_real(float("inf"))
        assert not is_real("1.0")
        assert not is_real(None)

    def test_trimmed_mean_basic(self):
        assert trimmed_mean([0, 0, 5, 10, 10], 2) == 5
        assert trimmed_mean([1, 2, 3], 0) == 2

    def test_trimmed_mean_small_input_untouched(self):
        assert trimmed_mean([1, 9], 1) == 5  # len ≤ 2t: no trim

    def test_trimmed_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            trimmed_mean([], 1)


class TestConstruction:
    def test_requires_exactly_one_budget_spec(self):
        with pytest.raises(ValueError):
            RealAAParty(0, 4, 1, 0.0, known_range=1.0, iterations=2)
        with pytest.raises(ValueError):
            RealAAParty(0, 4, 1, 0.0)

    def test_rejects_non_real_input(self):
        with pytest.raises(ValueError):
            RealAAParty(0, 4, 1, float("nan"), known_range=1.0)

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            RealAAParty(0, 4, 1, 0.0, epsilon=0.0, known_range=1.0)

    def test_rejects_low_resilience(self):
        with pytest.raises(ValueError):
            RealAAParty(0, 6, 2, 0.0, known_range=1.0)

    def test_duration(self):
        party = RealAAParty(0, 7, 2, 0.0, iterations=4)
        assert party.duration == 12


class TestFaultFreeAndBenign:
    def test_exact_agreement_without_faults(self):
        outcome = run_real_aa([1.0, 2.0, 3.0, 4.0], t=0, epsilon=0.5)
        outs = set(outcome.honest_outputs.values())
        assert len(outs) == 1
        assert outcome.achieved_aa

    def test_identical_inputs_fixed_point(self):
        outcome = run_real_aa([5.0] * 7, t=2, epsilon=0.1, adversary=SilentAdversary())
        assert all(v == 5.0 for v in outcome.honest_outputs.values())

    def test_silent_adversary_converges_in_one_iteration(self):
        outcome = run_real_aa(
            [0.0, 10.0, 5.0, 1.0, 9.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            adversary=SilentAdversary(),
        )
        assert outcome.achieved_aa
        assert len(set(outcome.honest_outputs.values())) == 1

    def test_passive_adversary_converges(self):
        outcome = run_real_aa(
            [0.0, 10.0, 5.0, 1.0, 9.0, 2.0, 8.0],
            t=2,
            epsilon=0.5,
            adversary=PassiveAdversary(),
        )
        assert outcome.achieved_aa


class TestAAPropertiesUnderAdversaries:
    INPUTS = [0.0, 10.0, 2.0, 8.0, 5.0, 0.0, 10.0]

    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: None,
            lambda: SilentAdversary(),
            lambda: PassiveAdversary(),
            lambda: RandomNoiseAdversary(seed=11),
            lambda: CrashAdversary(crash_round=4, partial_to=3),
            lambda: BurnScheduleAdversary(schedule=[1, 1]),
            lambda: BurnScheduleAdversary(schedule=[2], direction="down"),
            lambda: BurnScheduleAdversary(schedule=[1, 0, 1], direction="alternate"),
        ],
    )
    def test_validity_and_agreement(self, adversary_factory):
        outcome = run_real_aa(
            self.INPUTS,
            t=2,
            epsilon=0.25,
            known_range=10.0,
            adversary=adversary_factory(),
        )
        assert outcome.terminated
        assert outcome.valid, outcome.honest_outputs
        assert outcome.agreement, outcome.output_spread

    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50),
            min_size=7,
            max_size=7,
        ),
        st.sampled_from(["silent", "noise", "burn"]),
    )
    def test_property_random_inputs(self, inputs, adversary_kind):
        adversary = {
            "silent": lambda: SilentAdversary(),
            "noise": lambda: RandomNoiseAdversary(seed=0),
            "burn": lambda: BurnScheduleAdversary(schedule=[1, 1]),
        }[adversary_kind]()
        outcome = run_real_aa(
            inputs, t=2, epsilon=0.5, known_range=100.0, adversary=adversary
        )
        assert outcome.achieved_aa


class TestBadSetMechanism:
    def test_honest_parties_never_blacklisted(self):
        n, t = 7, 2
        inputs = [0.0, 10.0, 2.0, 8.0, 5.0, 0.0, 10.0]
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=3),
            adversary=BurnScheduleAdversary(schedule=[1, 1]),
        )
        for pid in result.honest:
            assert result.parties[pid].bad <= result.corrupted

    def test_silent_parties_detected_immediately(self):
        n, t = 7, 2
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, float(pid), iterations=2),
            adversary=SilentAdversary(),
        )
        for pid in result.honest:
            record = result.parties[pid].history[0]
            assert set(record.newly_detected) == result.corrupted

    def test_burners_detected_in_their_burn_iteration(self):
        n, t = 7, 2
        inputs = [0.0, 10.0, 2.0, 8.0, 5.0, 0.0, 10.0]
        adversary = BurnScheduleAdversary(schedule=[1, 1], corrupt=[5, 6])
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=3),
            adversary=adversary,
        )
        assert len(adversary.burn_log) == 2
        for pid in result.honest:
            history = result.parties[pid].history
            assert adversary.burn_log[0][1][0] in history[0].newly_detected
            assert adversary.burn_log[1][1][0] in history[1].newly_detected


class TestLemma5AndLemma6:
    def test_lemma6_values_stay_in_input_range(self):
        """Claim 8 of [7]: V_R ⊆ [min V_0, max V_0] at every iteration."""
        n, t = 7, 2
        inputs = [0.0, 10.0, 2.0, 8.0, 5.0, 0.0, 10.0]
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=4),
            adversary=BurnScheduleAdversary(schedule=[1, 1]),
        )
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        lo, hi = min(honest_inputs), max(honest_inputs)
        for pid in result.honest:
            for record in result.parties[pid].history:
                assert lo <= record.new_value <= hi

    def test_lemma5_range_bound_respected(self):
        """After R iterations the honest range is within the Lemma-5 bound
        under the burn-schedule adversary."""
        n, t = 7, 2
        inputs = [0.0, 0.0, 0.0, 10.0, 10.0, 0.0, 0.0]
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=4),
            adversary=BurnScheduleAdversary(schedule=[1, 1]),
        )
        ranges = honest_value_ranges(result)
        initial = ranges[0]
        for R in range(1, len(ranges)):
            assert ranges[R] <= initial * lemma5_factor(n, t, R) + 1e-9 or (
                # the adversary may of course do worse than its worst case
                ranges[R] <= ranges[R - 1] + 1e-9
            )

    def test_burn_attack_slows_convergence(self):
        """Without burns the range collapses in one iteration; with a burn it
        provably cannot (the attacked iteration retains a constant fraction)."""
        n, t = 7, 2
        inputs = [0.0, 0.0, 0.0, 10.0, 10.0, 0.0, 0.0]

        silent = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=2),
            adversary=SilentAdversary(),
        )
        assert honest_value_ranges(silent)[1] == 0.0

        burned = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=2),
            adversary=BurnScheduleAdversary(schedule=[2]),
        )
        assert honest_value_ranges(burned)[1] > 0.0

    def test_ranges_never_increase(self):
        n, t = 7, 2
        inputs = [0.0, 10.0, 3.0, 6.0, 5.0, 1.0, 9.0]
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=4),
            adversary=BurnScheduleAdversary(schedule=[1, 1], direction="alternate"),
        )
        ranges = honest_value_ranges(result)
        for before, after in zip(ranges, ranges[1:]):
            assert after <= before + 1e-12


class TestTermination:
    def test_local_termination_recorded(self):
        n, t = 7, 2
        outcome = run_real_aa(
            [0.0, 10.0, 0.0, 10.0, 5.0, 0.0, 0.0],
            t=t,
            epsilon=0.5,
            known_range=10.0,
            adversary=SilentAdversary(),
        )
        assert outcome.measured_rounds is not None
        assert outcome.measured_rounds <= outcome.rounds

    def test_budgeted_rounds_match_duration(self):
        n, t = 7, 2
        party = RealAAParty(0, n, t, 0.0, epsilon=0.5, known_range=10.0)
        outcome = run_real_aa(
            [0.0] * n, t=t, epsilon=0.5, known_range=10.0, adversary=SilentAdversary()
        )
        assert outcome.rounds == party.duration
