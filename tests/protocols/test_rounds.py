"""Tests for the round-complexity formulas (Theorem 3, Lemma 5, Remark 3)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocols import (
    ROUNDS_PER_ITERATION,
    check_resilience,
    lemma5_factor,
    paths_finder_round_bound,
    realaa_duration,
    realaa_iterations,
    schedule_factor,
    theorem3_round_bound,
    tree_aa_round_bound,
)


class TestResilience:
    def test_boundary(self):
        check_resilience(4, 1)
        check_resilience(7, 2)
        with pytest.raises(ValueError):
            check_resilience(3, 1)
        with pytest.raises(ValueError):
            check_resilience(6, 2)

    def test_t_zero_always_fine(self):
        check_resilience(1, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_resilience(4, -1)
        with pytest.raises(ValueError):
            check_resilience(0, 0)


class TestLemma5Factor:
    def test_t_zero_collapses(self):
        assert lemma5_factor(4, 0, 1) == 0.0

    def test_single_iteration(self):
        # t / (n − 2t) with R = 1
        assert lemma5_factor(7, 2, 1) == pytest.approx(2 / 3)

    def test_matches_closed_form(self):
        n, t, R = 13, 4, 3
        assert lemma5_factor(n, t, R) == pytest.approx(
            t**R / (R**R * (n - 2 * t) ** R)
        )

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=20))
    def test_decreasing_in_iterations_eventually(self, t, extra):
        n = 3 * t + 1 + extra
        factors = [lemma5_factor(n, t, R) for R in range(1, 10)]
        # after R >= t the factor is strictly decreasing
        tail = factors[t - 1 :]
        assert all(a >= b for a, b in zip(tail, tail[1:]))

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            lemma5_factor(4, 1, 0)


class TestScheduleFactor:
    def test_even_split_is_best(self):
        n, t, R = 10, 3, 3
        even = schedule_factor(n, t, [1, 1, 1])
        assert even >= schedule_factor(n, t, [3, 0, 0])
        assert even >= schedule_factor(n, t, [2, 1, 0])

    def test_budget_enforced(self):
        with pytest.raises(ValueError):
            schedule_factor(7, 2, [2, 1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            schedule_factor(7, 2, [-1, 3])

    def test_zero_entry_collapses(self):
        assert schedule_factor(7, 2, [2, 0]) == 0.0


class TestRealAAIterations:
    def test_no_spread_single_iteration(self):
        assert realaa_iterations(0.0, 1.0, 7, 2) == 1

    def test_t_zero_single_iteration(self):
        assert realaa_iterations(1e9, 1e-9, 4, 0) == 1

    def test_guarantee_met(self):
        from repro.protocols import worst_burn_factor

        for spread in (10.0, 1e3, 1e6):
            for eps in (1.0, 0.01):
                R = realaa_iterations(spread, eps, 7, 2)
                assert spread * worst_burn_factor(7, 2, R) <= eps
                if R > 1:
                    assert spread * worst_burn_factor(7, 2, R - 1) > eps

    def test_budget_capped_at_t_plus_one(self):
        """A clean iteration collapses the range exactly, so t + 1
        iterations always suffice — the budget never exceeds that."""
        for n, t in ((4, 1), (7, 2), (13, 4), (31, 10)):
            assert realaa_iterations(1e30, 1e-9, n, t) <= t + 1

    def test_worst_burn_factor_properties(self):
        from repro.protocols import worst_burn_factor

        # zero beyond the budget: every iteration needs a fresh burn
        assert worst_burn_factor(7, 2, 3) == 0.0
        # never exceeds 1 (ranges cannot grow)
        for R in range(1, 11):
            assert 0.0 <= worst_burn_factor(31, 10, R) <= 1.0
        # dominates the idealised Lemma-5 form (it is the conservative one)
        for R in range(1, 5):
            assert worst_burn_factor(13, 4, R) >= lemma5_factor(13, 4, R) - 1e-12

    def test_monotone_in_spread(self):
        rs = [realaa_iterations(d, 1.0, 7, 2) for d in (1, 10, 100, 1e4, 1e8)]
        assert rs == sorted(rs)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            realaa_iterations(10.0, 0.0, 7, 2)

    def test_negative_range(self):
        with pytest.raises(ValueError):
            realaa_iterations(-1.0, 1.0, 7, 2)

    def test_duration_is_three_per_iteration(self):
        assert realaa_duration(100.0, 1.0, 7, 2) == (
            ROUNDS_PER_ITERATION * realaa_iterations(100.0, 1.0, 7, 2)
        )


class TestTheorem3Bound:
    def test_trivial_spread(self):
        assert theorem3_round_bound(0.5, 1.0) == ROUNDS_PER_ITERATION

    def test_formula_at_large_ratio(self):
        # D/ε = 2^16: 7·16/log2(16) = 28
        assert theorem3_round_bound(2**16, 1.0) == 28

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            theorem3_round_bound(10.0, -1.0)

    @given(st.floats(min_value=8.0, max_value=1e9))
    def test_operational_count_within_theorem3(self, spread):
        """The Lemma-5-derived iteration count never exceeds the paper's
        closed-form bound (for the optimal-resilience n = 3t + 1)."""
        for n, t in ((4, 1), (7, 2), (13, 4)):
            assert realaa_duration(spread, 1.0, n, t) <= theorem3_round_bound(
                spread, 1.0
            )

    def test_sub_logarithmic_growth(self):
        """The hallmark of Theorem 3: o(log) growth in D."""
        small = theorem3_round_bound(2**10, 1.0)
        large = theorem3_round_bound(2**40, 1.0)
        assert large < 4 * small  # log would give exactly 4× here


class TestCompositeBounds:
    def test_paths_finder_bound(self):
        assert paths_finder_round_bound(100) == theorem3_round_bound(200, 1.0)
        with pytest.raises(ValueError):
            paths_finder_round_bound(0)

    def test_tree_aa_bound_composition(self):
        assert tree_aa_round_bound(100, 30) == paths_finder_round_bound(
            100
        ) + theorem3_round_bound(30, 1.0)

    def test_tree_aa_bound_handles_tiny_diameter(self):
        assert tree_aa_round_bound(5, 0) >= ROUNDS_PER_ITERATION
