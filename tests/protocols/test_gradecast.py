"""Tests for gradecast's three guarantees under honest and Byzantine senders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import Adversary, RandomNoiseAdversary, SilentAdversary
from repro.net import run_protocol
from repro.protocols import (
    BOTTOM,
    GRADE_HIGH,
    GRADE_LOW,
    GRADE_NONE,
    GradecastParty,
)


def run_gradecast(n, t, sender, value, adversary=None):
    result = run_protocol(
        n,
        t,
        lambda pid: GradecastParty(pid, n, t, sender=sender, value=value),
        adversary=adversary,
    )
    return result


class TestHonestSender:
    def test_everyone_grades_two(self):
        result = run_gradecast(7, 2, sender=0, value=3.5)
        for pid in range(7):
            assert result.outputs[pid] == (3.5, GRADE_HIGH)

    def test_works_with_byzantine_helpers_silent(self):
        result = run_gradecast(7, 2, sender=0, value="v", adversary=SilentAdversary())
        for pid in result.honest:
            assert result.outputs[pid] == ("v", GRADE_HIGH)

    def test_works_with_noise(self):
        result = run_gradecast(
            7, 2, sender=1, value=42, adversary=RandomNoiseAdversary(seed=4)
        )
        for pid in result.honest:
            assert result.outputs[pid] == (42, GRADE_HIGH)

    @given(st.integers(min_value=-100, max_value=100))
    def test_arbitrary_values(self, value):
        result = run_gradecast(4, 1, sender=2, value=value, adversary=SilentAdversary())
        for pid in result.honest:
            assert result.outputs[pid] == (value, GRADE_HIGH)

    def test_minimum_network(self):
        result = run_gradecast(4, 1, sender=0, value="x", adversary=SilentAdversary())
        for pid in result.honest:
            assert result.outputs[pid] == ("x", GRADE_HIGH)


class TestByzantineSender:
    def test_silent_sender_grades_zero(self):
        result = run_gradecast(7, 2, sender=6, value=None, adversary=SilentAdversary())
        for pid in result.honest:
            assert result.outputs[pid] == (BOTTOM, GRADE_NONE)

    def _equivocation_adversary(self, n, split_at):
        class Equivocator(Adversary):
            """Corrupted sender sends 'A' to low pids, 'B' to high pids;
            corrupted helpers echo/support faithfully for each side."""

            def byzantine_messages(self, view):
                out = {}
                for pid in sorted(view.corrupted):
                    outbox = {}
                    if view.round_index == 0 and pid == n - 1:
                        for r in range(view.n):
                            outbox[r] = ("val", 0, "A" if r < split_at else "B")
                    out[pid] = outbox
                return out

        return Equivocator()

    @pytest.mark.parametrize("split_at", [1, 3, 5])
    def test_graded_consistency_under_equivocation(self, split_at):
        """If two honest parties grade ≥ 1, their values are equal."""
        n, t = 7, 2
        result = run_gradecast(
            n, t, sender=n - 1, value=None, adversary=self._equivocation_adversary(n, split_at)
        )
        graded = [
            result.outputs[pid]
            for pid in result.honest
            if result.outputs[pid][1] >= GRADE_LOW
        ]
        values = {value for value, _ in graded}
        assert len(values) <= 1

    @pytest.mark.parametrize("split_at", [1, 2, 3, 4, 5, 6])
    def test_graded_agreement_under_equivocation(self, split_at):
        """If an honest party grades 2, every honest party grades ≥ 1."""
        n, t = 7, 2
        result = run_gradecast(
            n, t, sender=n - 1, value=None, adversary=self._equivocation_adversary(n, split_at)
        )
        grades = [result.outputs[pid][1] for pid in result.honest]
        if GRADE_HIGH in grades:
            assert all(g >= GRADE_LOW for g in grades)


class TestPayloadHygiene:
    def test_sender_argument_validated(self):
        with pytest.raises(ValueError):
            GradecastParty(0, 4, 1, sender=9)

    def test_resilience_validated(self):
        with pytest.raises(ValueError):
            GradecastParty(0, 3, 1, sender=0)

    def test_unhashable_value_treated_as_missing(self):
        class SendsUnhashable(Adversary):
            def byzantine_messages(self, view):
                if view.round_index == 0:
                    return {3: {r: ("val", 0, ["un", "hashable"]) for r in range(4)}}
                return {3: {}}

        result = run_gradecast(
            4, 1, sender=3, value=None, adversary=SendsUnhashable(corrupt=[3])
        )
        for pid in result.honest:
            assert result.outputs[pid] == (BOTTOM, GRADE_NONE)

    def test_wrong_iteration_tag_ignored(self):
        class WrongTag(Adversary):
            def byzantine_messages(self, view):
                if view.round_index == 0:
                    return {3: {r: ("val", 99, "late") for r in range(4)}}
                return {3: {}}

        result = run_gradecast(
            4, 1, sender=3, value=None, adversary=WrongTag(corrupt=[3])
        )
        for pid in result.honest:
            assert result.outputs[pid] == (BOTTOM, GRADE_NONE)
