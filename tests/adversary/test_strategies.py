"""Tests for the general-purpose adversary strategies."""

import pytest

from repro.adversary import (
    AdaptiveCrashAdversary,
    ConsistentLiarAdversary,
    CrashAdversary,
    EchoAdversary,
    NoAdversary,
    PassiveAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)
from repro.core import run_real_aa
from repro.net import ByzantineModelError, broadcast, run_protocol
from repro.net.protocol import ProtocolParty
from repro.protocols import RealAAParty


class RecorderParty(ProtocolParty):
    """Broadcasts its pid each round; records every inbox."""

    def __init__(self, pid, n, t, rounds=3):
        super().__init__(pid, n, t)
        self._rounds = rounds
        self.inboxes = []

    @property
    def duration(self):
        return self._rounds

    def messages_for_round(self, round_index):
        return broadcast(("ping", self.pid, round_index), self.n)

    def receive_round(self, round_index, inbox):
        self.inboxes.append(dict(inbox))
        self.output = self.inboxes


class TestSilent:
    def test_no_traffic_from_corrupted(self):
        result = run_protocol(
            4, 1, lambda pid: RecorderParty(pid, 4, 1), adversary=SilentAdversary()
        )
        for pid in result.honest:
            for inbox in result.outputs[pid]:
                assert 3 not in inbox


class TestPassive:
    def test_corrupted_behave_exactly_honestly(self):
        result = run_protocol(
            4, 1, lambda pid: RecorderParty(pid, 4, 1), adversary=PassiveAdversary()
        )
        for pid in result.honest:
            for round_index, inbox in enumerate(result.outputs[pid]):
                assert inbox[3] == ("ping", 3, round_index)

    def test_outputs_match_fault_free_run(self):
        inputs = [0.0, 4.0, 8.0, 2.0, 6.0, 1.0, 7.0]
        passive = run_real_aa(
            inputs, t=2, epsilon=0.5, known_range=8.0, adversary=PassiveAdversary()
        )
        clean = run_real_aa(
            inputs, t=2, epsilon=0.5, known_range=8.0, adversary=NoAdversary()
        )
        for pid in passive.honest_outputs:
            assert passive.honest_outputs[pid] == pytest.approx(
                clean.honest_outputs[pid]
            )


class TestCrash:
    def test_faithful_then_silent(self):
        result = run_protocol(
            4,
            1,
            lambda pid: RecorderParty(pid, 4, 1, rounds=4),
            adversary=CrashAdversary(crash_round=2),
        )
        inboxes = result.outputs[0]
        assert 3 in inboxes[0] and 3 in inboxes[1]
        assert 3 not in inboxes[2] and 3 not in inboxes[3]

    def test_partial_crash_round(self):
        result = run_protocol(
            4,
            1,
            lambda pid: RecorderParty(pid, 4, 1, rounds=3),
            adversary=CrashAdversary(crash_round=1, partial_to=1),
        )
        # in the crash round only recipients with pid < 1 get the message
        assert 3 in result.outputs[0][1]
        assert 3 not in result.outputs[1][1]
        assert 3 not in result.outputs[2][1]

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            CrashAdversary(crash_round=-1)

    def test_partial_to_zero_is_clean_crash(self):
        # partial_to=0: nobody gets the crash-round messages, so all honest
        # views agree (the crasher is simply absent from round 1 on).
        result = run_protocol(
            4,
            1,
            lambda pid: RecorderParty(pid, 4, 1, rounds=3),
            adversary=CrashAdversary(crash_round=1, partial_to=0),
        )
        crash_views = [3 in result.outputs[pid][1] for pid in sorted(result.honest)]
        assert crash_views == [False, False, False]

    def test_partial_to_n_is_crash_after_send(self):
        # partial_to=n: everyone gets the crash-round messages — the party
        # crashes *after* completing its sends, again leaving consistent
        # honest views; silence starts in the following round.
        result = run_protocol(
            4,
            1,
            lambda pid: RecorderParty(pid, 4, 1, rounds=3),
            adversary=CrashAdversary(crash_round=1, partial_to=4),
        )
        crash_views = [3 in result.outputs[pid][1] for pid in sorted(result.honest)]
        assert crash_views == [True, True, True]
        assert all(3 not in result.outputs[pid][2] for pid in result.honest)

    def test_strict_subset_diverges_honest_views(self):
        # 0 < partial_to < n is the interesting case: honest parties below
        # the cutoff heard from the crasher in the crash round, the others
        # did not — the inconsistent-views scenario crash tolerance is
        # really about.
        result = run_protocol(
            5,
            1,
            lambda pid: RecorderParty(pid, 5, 1, rounds=3),
            adversary=CrashAdversary(crash_round=1, partial_to=2),
        )
        got = {pid: 4 in result.outputs[pid][1] for pid in sorted(result.honest)}
        assert got == {0: True, 1: True, 2: False, 3: False}
        # before the crash round everyone heard from the crasher
        assert all(4 in result.outputs[pid][0] for pid in result.honest)

    def test_realaa_survives_crash(self):
        outcome = run_real_aa(
            [0.0, 5.0, 10.0, 3.0, 7.0, 1.0, 9.0],
            t=2,
            epsilon=0.5,
            known_range=10.0,
            adversary=CrashAdversary(crash_round=3, partial_to=2),
        )
        assert outcome.achieved_aa


class TestConsistentLiar:
    def test_liars_look_like_honest_parties_with_other_inputs(self):
        n, t = 7, 2
        inputs = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        lie = 6.0
        liar = ConsistentLiarAdversary(
            liar_factory=lambda pid: RealAAParty(pid, n, t, lie, iterations=3)
        )
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=3),
            adversary=liar,
        )
        # the lie is consistent, so nobody is detected...
        for pid in result.honest:
            assert not result.parties[pid].bad
        # ...and validity still quantifies over honest inputs only
        for value in (result.outputs[p] for p in result.honest):
            assert 0.0 <= value <= 0.0 + 1e-12

    def test_lie_outside_range_is_trimmed_away(self):
        n, t = 7, 2
        inputs = [1.0, 2.0, 3.0, 1.5, 2.5, 0.0, 0.0]
        liar = ConsistentLiarAdversary(
            liar_factory=lambda pid: RealAAParty(pid, n, t, 1000.0, iterations=3)
        )
        outcome = run_real_aa(
            inputs, t=t, epsilon=0.5, known_range=3.0, adversary=liar
        )
        assert outcome.valid


class TestRandomNoise:
    def test_traffic_is_junk_but_protocol_survives(self):
        outcome = run_real_aa(
            [0.0, 10.0, 5.0, 2.0, 8.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            known_range=10.0,
            adversary=RandomNoiseAdversary(seed=7),
        )
        assert outcome.achieved_aa

    def test_deterministic_given_seed(self):
        a = run_real_aa(
            [0.0, 10.0, 5.0, 2.0, 8.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            known_range=10.0,
            adversary=RandomNoiseAdversary(seed=3),
        )
        b = run_real_aa(
            [0.0, 10.0, 5.0, 2.0, 8.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            known_range=10.0,
            adversary=RandomNoiseAdversary(seed=3),
        )
        assert a.honest_outputs == b.honest_outputs


class TestEcho:
    def test_replays_an_honest_payload(self):
        result = run_protocol(
            4, 1, lambda pid: RecorderParty(pid, 4, 1), adversary=EchoAdversary()
        )
        inbox = result.outputs[0][0]
        # party 3's message is a replay of the first honest payload seen
        assert inbox[3][0] == "ping"
        assert inbox[3][1] in result.honest

    def test_realaa_survives_echo(self):
        outcome = run_real_aa(
            [0.0, 10.0, 5.0, 2.0, 8.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            known_range=10.0,
            adversary=EchoAdversary(),
        )
        assert outcome.achieved_aa


class TestAdaptiveCrash:
    def test_schedule_is_followed(self):
        adversary = AdaptiveCrashAdversary(schedule={1: [2], 3: [0]})
        result = run_protocol(
            5,
            2,
            lambda pid: RecorderParty(pid, 5, 2, rounds=5),
            adversary=adversary,
        )
        assert result.trace.corruption_rounds == {2: 1, 0: 3}
        inboxes_of_4 = result.outputs[4]
        assert 2 in inboxes_of_4[0]
        assert 2 not in inboxes_of_4[1]
        assert 0 in inboxes_of_4[2]
        assert 0 not in inboxes_of_4[3]

    def test_budget_still_enforced(self):
        adversary = AdaptiveCrashAdversary(schedule={0: [0], 1: [1], 2: [2]})
        with pytest.raises(ByzantineModelError):
            run_protocol(
                7,
                2,
                lambda pid: RecorderParty(pid, 7, 2, rounds=4),
                adversary=adversary,
            )

    def test_realaa_survives_adaptive_crash(self):
        outcome = run_real_aa(
            [0.0, 10.0, 5.0, 2.0, 8.0, 1.0, 9.0],
            t=2,
            epsilon=0.5,
            known_range=10.0,
            adversary=AdaptiveCrashAdversary(schedule={2: [1], 5: [4]}),
        )
        assert outcome.terminated and outcome.agreement
        # Validity here quantifies over the parties that *remained* honest.
        values = list(outcome.honest_outputs.values())
        assert all(0.0 <= v <= 10.0 for v in values)
