"""Tests for the budget-splitting burn attack (the Fekete-style adversary)."""

import pytest

from repro.adversary.realaa_attacks import (
    BurnScheduleAdversary,
    SplitBroadcastAdversary,
    even_burn_schedule,
)
from repro.analysis import honest_value_ranges
from repro.baselines import IterativeRealAAParty
from repro.net import run_protocol
from repro.protocols import GRADE_LOW, RealAAParty


class TestEvenBurnSchedule:
    def test_even_division(self):
        assert even_burn_schedule(6, 3) == [2, 2, 2]

    def test_remainder_goes_first(self):
        assert even_burn_schedule(5, 3) == [2, 2, 1]

    def test_fewer_burns_than_iterations(self):
        assert even_burn_schedule(2, 4) == [1, 1, 0, 0]

    def test_zero_budget(self):
        assert even_burn_schedule(0, 3) == [0, 0, 0]

    def test_sums_to_budget(self):
        for t in range(8):
            for R in range(1, 6):
                assert sum(even_burn_schedule(t, R)) == t

    def test_invalid(self):
        with pytest.raises(ValueError):
            even_burn_schedule(-1, 2)
        with pytest.raises(ValueError):
            even_burn_schedule(1, 0)


def run_attacked_realaa(schedule, iterations=3, direction="up", inputs=None, n=7, t=2):
    if inputs is None:
        inputs = [0.0, 0.0, 0.0, 10.0, 10.0, 0.0, 0.0]
    adversary = BurnScheduleAdversary(schedule=schedule, direction=direction)
    result = run_protocol(
        n,
        t,
        lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=iterations),
        adversary=adversary,
    )
    return result, adversary


class TestBurnMechanics:
    def test_schedule_validation(self):
        with pytest.raises(ValueError):
            BurnScheduleAdversary(schedule=[-1])
        with pytest.raises(ValueError):
            BurnScheduleAdversary(schedule=[1], direction="sideways")

    def test_burn_log_matches_schedule(self):
        _, adversary = run_attacked_realaa([1, 1])
        assert [entry[0] for entry in adversary.burn_log] == [0, 1]
        burners = {b for _, bs, _ in adversary.burn_log for b in bs}
        assert burners == {5, 6}

    def test_each_party_burns_once(self):
        _, adversary = run_attacked_realaa([2, 2], iterations=4)
        all_burners = [b for _, bs, _ in adversary.burn_log for b in bs]
        assert len(all_burners) == len(set(all_burners)) == 2

    def test_group_split_creates_inclusion_divergence(self):
        result, adversary = run_attacked_realaa([2])
        burners = set(adversary.burn_log[0][1])
        accepted_counts = set()
        for pid in result.honest:
            record = result.parties[pid].history[0]
            accepted_counts.add(len(set(record.accepted) & burners))
        # some honest accepted the planted values, some rejected them
        assert len(accepted_counts) > 1

    def test_burners_blacklisted_everywhere_after_burn(self):
        result, adversary = run_attacked_realaa([1], iterations=2)
        burner = adversary.burn_log[0][1][0]
        for pid in result.honest:
            assert burner in result.parties[pid].history[0].newly_detected
            # and the burner contributes nothing in the next iteration
            assert burner not in result.parties[pid].history[1].accepted

    def test_divergence_is_created(self):
        result, _ = run_attacked_realaa([2], iterations=2)
        ranges = honest_value_ranges(result)
        assert ranges[1] > 0.0

    def test_down_direction_plants_minimum(self):
        result, adversary = run_attacked_realaa([1], direction="down")
        burner = adversary.burn_log[0][1][0]
        planted = [
            record.accepted[burner]
            for pid in result.honest
            for record in [result.parties[pid].history[0]]
            if burner in record.accepted
        ]
        assert planted and all(v == 0.0 for v in planted)

    def test_up_direction_plants_maximum(self):
        result, adversary = run_attacked_realaa([1], direction="up")
        burner = adversary.burn_log[0][1][0]
        planted = [
            record.accepted[burner]
            for pid in result.honest
            for record in [result.parties[pid].history[0]]
            if burner in record.accepted
        ]
        assert planted and all(v == 10.0 for v in planted)

    def test_exhausted_budget_means_clean_iterations(self):
        result, adversary = run_attacked_realaa([1, 1], iterations=4)
        ranges = honest_value_ranges(result)
        # after both burns are spent, one clean iteration collapses the range
        assert ranges[3] == pytest.approx(0.0, abs=1e-12)

    def test_no_burn_with_zero_schedule(self):
        result, adversary = run_attacked_realaa([0, 0])
        assert adversary.burn_log == []
        ranges = honest_value_ranges(result)
        assert ranges[1] == pytest.approx(0.0, abs=1e-12)

    def test_validity_never_violated(self):
        result, _ = run_attacked_realaa([2], iterations=3)
        for pid in result.honest:
            assert 0.0 <= result.outputs[pid] <= 10.0


class TestReuseAgainstMemoryless:
    def _run(self, memory, schedule, iterations=5):
        n, t = 7, 2
        inputs = [0.0, 0.0, 0.0, 10.0, 10.0, 0.0, 0.0]
        adversary = BurnScheduleAdversary(schedule=schedule, reuse_burners=True)
        result = run_protocol(
            n,
            t,
            lambda pid: IterativeRealAAParty(
                pid, n, t, inputs[pid], iterations=iterations, memory=memory
            ),
            adversary=adversary,
        )
        return honest_value_ranges(result)

    def test_memoryless_victim_suffers_every_iteration(self):
        ranges = self._run(memory=False, schedule=[2] * 5)
        assert all(r > 0 for r in ranges[1:])

    def test_memory_stops_reuse(self):
        ranges = self._run(memory=True, schedule=[2] * 5)
        # after the budget is spent (iteration 1 at the latest), detection
        # means reused burners are ignored and the range collapses
        assert ranges[-1] == pytest.approx(0.0, abs=1e-12)


class TestSplitBroadcast:
    def test_sustains_halving_forever(self):
        n, t = 7, 2
        inputs = [0.0, 10.0, 0.0, 10.0, 5.0, 0.0, 0.0]
        result = run_protocol(
            n,
            t,
            lambda pid: IterativeRealAAParty(
                pid, n, t, inputs[pid], iterations=6, distribution="naive"
            ),
            adversary=SplitBroadcastAdversary(),
        )
        ranges = honest_value_ranges(result)
        factors = [
            after / before for before, after in zip(ranges, ranges[1:]) if before > 0
        ]
        assert factors, "expected sustained divergence"
        assert all(f == pytest.approx(0.5, abs=0.1) for f in factors)

    def test_validity_still_holds(self):
        n, t = 7, 2
        inputs = [0.0, 10.0, 0.0, 10.0, 5.0, 0.0, 0.0]
        result = run_protocol(
            n,
            t,
            lambda pid: IterativeRealAAParty(
                pid, n, t, inputs[pid], iterations=6, distribution="naive"
            ),
            adversary=SplitBroadcastAdversary(),
        )
        for pid in result.honest:
            assert 0.0 <= result.outputs[pid] <= 10.0
