"""Tests for the chaos adversary (randomized strategy mixing)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import ChaosAdversary
from repro.core import run_real_aa, run_tree_aa
from repro.net import TranscriptRecorder, run_protocol
from repro.protocols import RealAAParty
from repro.trees import random_tree

from ..strategies import trees_with_vertex_choices


class TestConstruction:
    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            ChaosAdversary(weights={name: 0 for name in ChaosAdversary.BEHAVIOURS})

    def test_weights_bias_behaviour(self):
        adversary = ChaosAdversary(
            seed=1, weights={"silent": 100.0, **{n: 0.0 for n in ("faithful", "stale", "junk", "mirror")}}
        )
        run_real_aa(
            [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            known_range=5.0,
            adversary=adversary,
        )
        behaviours = {entry[2] for entry in adversary.log}
        assert behaviours == {"silent"}

    def test_log_is_recorded(self):
        adversary = ChaosAdversary(seed=2)
        run_real_aa(
            [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            known_range=5.0,
            adversary=adversary,
        )
        assert adversary.log
        rounds = {entry[0] for entry in adversary.log}
        assert 0 in rounds

    def test_deterministic_per_seed(self):
        def run(seed):
            outcome = run_real_aa(
                [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0],
                t=2,
                epsilon=0.5,
                known_range=5.0,
                adversary=ChaosAdversary(seed=seed),
            )
            return outcome.honest_outputs

        assert run(9) == run(9)


def _byzantine_messages_by_round(recorder, pid):
    """Map round index -> list of Byzantine messages ``pid`` sent."""
    return {
        record.round_index: [
            message
            for message in record.byzantine_messages
            if message.sender == pid
        ]
        for record in recorder.rounds
    }


class TestStaleSnapshotting:
    def _run_with(self, adversary):
        n, t = 7, 2
        inputs = [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0]
        recorder = TranscriptRecorder()
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=3),
            adversary=adversary,
            observer=recorder,
        )
        return result, recorder

    def test_stale_in_round_zero_is_not_silent(self):
        # Force "stale" every round for every corrupted party.  With the
        # old snapshot-on-faithful-only logic there is never a snapshot,
        # so the corrupted parties would go silent forever; with per-round
        # snapshotting, round 0 stale falls back to the faithful outbox.
        adversary = ChaosAdversary(
            seed=0,
            weights={"stale": 1.0, **{n: 0.0 for n in ("faithful", "silent", "junk", "mirror")}},
        )
        result, recorder = self._run_with(adversary)
        assert all(entry[2] == "stale" for entry in adversary.log)
        for pid in result.corrupted:
            sent = _byzantine_messages_by_round(recorder, pid)
            assert sent[0], (
                f"corrupted party {pid} sent nothing in round 0 under 'stale'"
            )

    def test_stale_replays_previous_round_after_any_behaviour(self):
        # silent in round 0, stale in round 1: the stale replay must be
        # round 0's faithful outbox, not empty.
        script = []
        for pid in (5, 6):
            script.append((0, pid, "silent"))
            script.append((1, pid, "stale"))
        adversary = ChaosAdversary(seed=0, corrupt=[5, 6], script=script)
        _, recorder = self._run_with(adversary)
        for pid in (5, 6):
            sent = _byzantine_messages_by_round(recorder, pid)
            assert not sent[0]
            assert sent[1]


class TestScriptReplay:
    def test_script_overrides_weighted_draw(self):
        n, t = 7, 2
        inputs = [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0]
        script = [(0, 5, "silent"), (1, 6, "junk")]
        adversary = ChaosAdversary(seed=3, corrupt=[5, 6], script=script)
        run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=3),
            adversary=adversary,
        )
        scripted = {(r, p): b for r, p, b in script}
        for round_index, pid, behaviour in adversary.log:
            assert behaviour == scripted.get((round_index, pid), "faithful")

    def test_replaying_own_log_reproduces_behaviours(self):
        def run(adversary):
            outcome = run_real_aa(
                [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0],
                t=2,
                epsilon=0.5,
                known_range=5.0,
                adversary=adversary,
            )
            return outcome.honest_outputs, list(adversary.log)

        free = ChaosAdversary(seed=11)
        free_outputs, free_log = run(free)
        replay = ChaosAdversary(seed=11, script=free_log)
        replay_outputs, replay_log = run(replay)
        assert replay_log == free_log
        assert replay_outputs == free_outputs

    def test_unknown_scripted_behaviour_rejected(self):
        with pytest.raises(ValueError):
            ChaosAdversary(script=[(0, 5, "explode")])


class TestMirrorSampling:
    def test_mirror_varies_with_seed(self):
        # With the old always-lowest-id-first-payload mirror, every seed
        # produced identical mirrored traffic; the seeded sampler should
        # produce at least two distinct round-0 mirror payload sets
        # across a handful of seeds.
        n, t = 7, 2
        inputs = [0.0, 5.0, 2.0, 1.0, 3.0, 0.25, 4.75]
        mirror_only = {"mirror": 1.0, **{b: 0.0 for b in ("faithful", "silent", "stale", "junk")}}
        seen = set()
        for seed in range(8):
            adversary = ChaosAdversary(seed=seed, weights=mirror_only, corrupt=[5, 6])
            recorder = TranscriptRecorder()
            run_protocol(
                n,
                t,
                lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=2),
                adversary=adversary,
                observer=recorder,
            )
            sent = _byzantine_messages_by_round(recorder, 5)
            payloads = tuple(
                repr(message.payload)
                for message in sorted(sent[0], key=lambda m: m.recipient)
            )
            seen.add(payloads)
        assert len(seen) >= 2


class TestProtocolsSurviveChaos:
    @pytest.mark.parametrize("seed", list(range(8)))
    def test_realaa(self, seed):
        rng = random.Random(seed)
        inputs = [rng.uniform(-10, 10) for _ in range(7)]
        outcome = run_real_aa(
            inputs, t=2, epsilon=0.5, known_range=20.0,
            adversary=ChaosAdversary(seed=seed),
        )
        assert outcome.achieved_aa

    @pytest.mark.parametrize("seed", list(range(5)))
    def test_tree_aa(self, seed):
        tree = random_tree(20, seed)
        rng = random.Random(seed)
        inputs = [rng.choice(tree.vertices) for _ in range(7)]
        outcome = run_tree_aa(tree, inputs, 2, adversary=ChaosAdversary(seed=seed))
        assert outcome.achieved_aa

    @given(
        trees_with_vertex_choices(n_choices=7, min_vertices=2),
        st.integers(min_value=0, max_value=100),
    )
    def test_property_tree_aa_under_chaos(self, tree_and_inputs, seed):
        tree, inputs = tree_and_inputs
        outcome = run_tree_aa(tree, inputs, 2, adversary=ChaosAdversary(seed=seed))
        assert outcome.achieved_aa

    def test_honest_never_blacklisted(self):
        n, t = 7, 2
        inputs = [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0]
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=4),
            adversary=ChaosAdversary(seed=4),
        )
        for pid in result.honest:
            assert result.parties[pid].bad <= result.corrupted
