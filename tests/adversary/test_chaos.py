"""Tests for the chaos adversary (randomized strategy mixing)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import ChaosAdversary
from repro.core import run_real_aa, run_tree_aa
from repro.net import run_protocol
from repro.protocols import RealAAParty
from repro.trees import random_tree

from ..conftest import trees_with_vertex_choices


class TestConstruction:
    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            ChaosAdversary(weights={name: 0 for name in ChaosAdversary.BEHAVIOURS})

    def test_weights_bias_behaviour(self):
        adversary = ChaosAdversary(
            seed=1, weights={"silent": 100.0, **{n: 0.0 for n in ("faithful", "stale", "junk", "mirror")}}
        )
        run_real_aa(
            [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            known_range=5.0,
            adversary=adversary,
        )
        behaviours = {entry[2] for entry in adversary.log}
        assert behaviours == {"silent"}

    def test_log_is_recorded(self):
        adversary = ChaosAdversary(seed=2)
        run_real_aa(
            [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0],
            t=2,
            epsilon=0.5,
            known_range=5.0,
            adversary=adversary,
        )
        assert adversary.log
        rounds = {entry[0] for entry in adversary.log}
        assert 0 in rounds

    def test_deterministic_per_seed(self):
        def run(seed):
            outcome = run_real_aa(
                [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0],
                t=2,
                epsilon=0.5,
                known_range=5.0,
                adversary=ChaosAdversary(seed=seed),
            )
            return outcome.honest_outputs

        assert run(9) == run(9)


class TestProtocolsSurviveChaos:
    @pytest.mark.parametrize("seed", list(range(8)))
    def test_realaa(self, seed):
        rng = random.Random(seed)
        inputs = [rng.uniform(-10, 10) for _ in range(7)]
        outcome = run_real_aa(
            inputs, t=2, epsilon=0.5, known_range=20.0,
            adversary=ChaosAdversary(seed=seed),
        )
        assert outcome.achieved_aa

    @pytest.mark.parametrize("seed", list(range(5)))
    def test_tree_aa(self, seed):
        tree = random_tree(20, seed)
        rng = random.Random(seed)
        inputs = [rng.choice(tree.vertices) for _ in range(7)]
        outcome = run_tree_aa(tree, inputs, 2, adversary=ChaosAdversary(seed=seed))
        assert outcome.achieved_aa

    @given(
        trees_with_vertex_choices(n_choices=7, min_vertices=2),
        st.integers(min_value=0, max_value=100),
    )
    def test_property_tree_aa_under_chaos(self, tree_and_inputs, seed):
        tree, inputs = tree_and_inputs
        outcome = run_tree_aa(tree, inputs, 2, adversary=ChaosAdversary(seed=seed))
        assert outcome.achieved_aa

    def test_honest_never_blacklisted(self):
        n, t = 7, 2
        inputs = [0.0, 5.0, 2.0, 1.0, 3.0, 0.0, 0.0]
        result = run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=4),
            adversary=ChaosAdversary(seed=4),
        )
        for pid in result.honest:
            assert result.parties[pid].bad <= result.corrupted
