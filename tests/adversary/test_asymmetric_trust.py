"""Tests for the asymmetric-trust attack and the quorum-accusation defense.

The attack: a corrupted sender graded 2 by an honest group A and 1 by the
rest lands only in the latter's BAD sets.  Behaving consistently forever
after, it feeds A's multisets one extra (extreme) value per iteration —
divergence with no further detection, breaking the once-per-party burn
accounting RealAA's round budget rests on.

The defense (on by default): parties piggyback their BAD sets on value
messages; ``t + 1`` accusers — at least one of them honest — globalise the
blacklisting before the divergence can recur.
"""

import random

import pytest

from repro.adversary.realaa_attacks import AsymmetricTrustAdversary
from repro.analysis import honest_value_ranges
from repro.core import run_real_aa, run_tree_aa
from repro.net import run_protocol
from repro.protocols import RealAAParty
from repro.trees import random_tree

N, T = 7, 2
INPUTS = [0.0, 0.0, 0.0, 100.0, 100.0, 0.0, 0.0]


def run_attack(accusations, iterations=None, direction="up", known_range=100.0):
    kwargs = (
        {"iterations": iterations}
        if iterations is not None
        else {"known_range": known_range}
    )
    return run_protocol(
        N,
        T,
        lambda pid: RealAAParty(
            pid, N, T, INPUTS[pid], epsilon=1.0, accusations=accusations, **kwargs
        ),
        adversary=AsymmetricTrustAdversary(direction=direction),
    )


class TestAttackWithoutAccusations:
    """Negative results: the ablated protocol is genuinely broken."""

    def test_sustained_divergence(self):
        result = run_attack(accusations=False, iterations=10)
        ranges = honest_value_ranges(result)
        assert all(r > 0 for r in ranges), ranges

    def test_constant_factor_per_iteration(self):
        result = run_attack(accusations=False, iterations=8)
        ranges = honest_value_ranges(result)
        factors = [b / a for a, b in zip(ranges[1:], ranges[2:])]
        # from iteration 1 on the factor is pinned at 1/2 — never collapsing
        assert all(f == pytest.approx(0.5, abs=0.05) for f in factors)

    def test_budget_violated(self):
        """ε-agreement fails within the deterministic round budget — the
        bug this attack exposes in a memory-only design."""
        result = run_attack(accusations=False)
        ranges = honest_value_ranges(result)
        assert ranges[-1] > 1.0

    def test_validity_still_holds(self):
        """The attack breaks agreement, never validity (the trim is sound)."""
        result = run_attack(accusations=False, iterations=6)
        for pid in result.honest:
            assert 0.0 <= result.outputs[pid] <= 100.0

    def test_no_divergence_in_setup_iteration(self):
        """Iteration 0's asymmetric grading is invisible: everyone accepts
        the planted values (grades 2 and 1 both accept); only the burner
        creates divergence."""
        result = run_attack(accusations=False, iterations=4)
        asym = sorted(result.corrupted)[1:]
        for pid in result.honest:
            record = result.parties[pid].history[0]
            for origin in asym:
                assert origin in record.accepted

    def test_asymmetric_bad_sets(self):
        result = run_attack(accusations=False, iterations=4)
        asym = sorted(result.corrupted)[1:]
        bad_sets = [frozenset(result.parties[p].bad) for p in sorted(result.honest)]
        for origin in asym:
            memberships = {origin in bad for bad in bad_sets}
            assert memberships == {True, False}  # trusted by some, not others


class TestAccusationDefense:
    def test_agreement_restored(self):
        result = run_attack(accusations=True)
        ranges = honest_value_ranges(result)
        assert ranges[-1] <= 1.0

    def test_quorum_globalises_blacklist(self):
        result = run_attack(accusations=True, iterations=4)
        for pid in result.honest:
            assert result.parties[pid].bad == result.corrupted

    def test_collapse_right_after_quorum(self):
        result = run_attack(accusations=True, iterations=4)
        ranges = honest_value_ranges(result)
        # iteration 0: the burn keeps the range positive; iteration 1: the
        # accusations land before acceptance, so the range collapses.
        assert ranges[1] > 0.0
        assert ranges[2] == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("direction", ["up", "down"])
    def test_both_directions(self, direction):
        result = run_attack(accusations=True, direction=direction)
        ranges = honest_value_ranges(result)
        assert ranges[-1] <= 1.0

    def test_false_accusations_are_harmless(self):
        """Corrupted parties accusing every honest party never reach the
        t + 1 quorum, so no honest party is ever blacklisted."""
        result = run_protocol(
            N,
            T,
            lambda pid: RealAAParty(
                pid, N, T, INPUTS[pid], epsilon=1.0, known_range=100.0
            ),
            adversary=AsymmetricTrustAdversary(accuse_honest=True),
        )
        for pid in result.honest:
            assert result.parties[pid].bad <= result.corrupted
        ranges = honest_value_ranges(result)
        assert ranges[-1] <= 1.0

    def test_tree_aa_resists_the_attack(self):
        tree = random_tree(30, seed=6)
        rng = random.Random(3)
        inputs = [rng.choice(tree.vertices) for _ in range(N)]
        outcome = run_tree_aa(tree, inputs, T, adversary=AsymmetricTrustAdversary())
        assert outcome.achieved_aa

    def test_larger_network(self):
        n, t = 13, 4
        inputs = [0.0 if i % 2 == 0 else 100.0 for i in range(n)]
        outcome = run_real_aa(
            inputs,
            t,
            epsilon=1.0,
            known_range=100.0,
            adversary=AsymmetricTrustAdversary(),
        )
        assert outcome.achieved_aa

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            AsymmetricTrustAdversary(direction="sideways")
