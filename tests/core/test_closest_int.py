"""Tests for closestInt and Remarks 1–2 (Section 4)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import closest_int


class TestDefinition:
    def test_integers_map_to_themselves(self):
        for z in range(-5, 6):
            assert closest_int(float(z)) == z

    def test_below_half_rounds_down(self):
        assert closest_int(2.4) == 2
        assert closest_int(-2.6) == -3

    def test_above_half_rounds_up(self):
        assert closest_int(2.6) == 3
        assert closest_int(-2.4) == -2

    def test_exact_half_rounds_up(self):
        """The paper's tie-break: j − z < (z+1) − j fails at j = z + 0.5,
        so closestInt(z + 0.5) = z + 1."""
        assert closest_int(2.5) == 3
        assert closest_int(-2.5) == -2
        assert closest_int(0.5) == 1

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            closest_int(float("nan"))
        with pytest.raises(ValueError):
            closest_int(float("inf"))

    @given(st.floats(min_value=-1e6, max_value=1e6))
    def test_result_within_half(self, j):
        z = closest_int(j)
        assert abs(j - z) <= 0.5

    @given(st.floats(min_value=-1e6, max_value=1e6))
    def test_result_is_floor_or_ceil(self, j):
        assert closest_int(j) in (math.floor(j), math.ceil(j))


class TestRemark1:
    """j ∈ [i_min, i_max] with integer endpoints ⇒ closestInt(j) ∈ [i_min, i_max]."""

    @given(
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=0, max_value=200),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_remark1(self, i_min, width, fraction):
        i_max = i_min + width
        j = i_min + fraction * width
        assert i_min <= closest_int(j) <= i_max

    def test_remark1_degenerate_interval(self):
        assert closest_int(5.0) == 5


class TestRemark2:
    """|j − j'| ≤ 1 ⇒ |closestInt(j) − closestInt(j')| ≤ 1."""

    @given(
        st.floats(min_value=-1e5, max_value=1e5),
        st.floats(min_value=-1.0, max_value=1.0),
    )
    def test_remark2(self, j, delta):
        j2 = j + delta
        assert abs(closest_int(j) - closest_int(j2)) <= 1

    def test_remark2_worst_case_pairs(self):
        # crafted pairs hugging the .5 boundaries from both sides
        assert abs(closest_int(1.49) - closest_int(2.49)) <= 1
        assert abs(closest_int(1.5) - closest_int(2.5)) <= 1
        assert abs(closest_int(1.51) - closest_int(2.51)) <= 1

    def test_remark2_fails_beyond_distance_one(self):
        # sanity: the remark is tight — at distance slightly above 1 the
        # rounded values can differ by 2
        assert abs(closest_int(1.49) - closest_int(2.51)) == 2
