"""Tests for the Section-5 protocol: AA on trees given a known path."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import RandomNoiseAdversary, SilentAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import KnownPathAAParty, run_path_aa
from repro.trees import (
    LabeledTree,
    TreePath,
    convex_hull,
    diameter_path,
    random_tree,
)

from ..strategies import trees_with_vertex_choices


class TestConstruction:
    def test_input_anywhere_in_tree(self):
        tree = random_tree(12, seed=3)
        path = diameter_path(tree).canonical()
        party = KnownPathAAParty(0, 4, 1, tree, path, tree.vertices[0])
        assert party.projection in path

    def test_unknown_input_rejected(self):
        tree = random_tree(6, seed=0)
        path = diameter_path(tree).canonical()
        with pytest.raises(KeyError):
            KnownPathAAParty(0, 4, 1, tree, path, "zzz")


class TestSection5Guarantees:
    def _run(self, tree, inputs, t, adversary=None):
        path = diameter_path(tree)
        return run_path_aa(tree, path, inputs, t, adversary=adversary, project=True)

    def test_figure2_style_scenario(self):
        spine = [f"v{i}" for i in range(1, 9)]
        edges = [(spine[i], spine[i + 1]) for i in range(7)]
        edges += [("v3", "u1"), ("v4", "x1"), ("x1", "u2"), ("v6", "u3")]
        tree = LabeledTree(edges=edges)
        path = TreePath(spine)
        inputs = ["u1", "u2", "u3", "u1"]
        outcome = run_path_aa(tree, path, inputs, t=1, project=True)
        assert outcome.achieved_aa
        # honest outputs lie on the projected segment v3..v6
        for v in outcome.honest_outputs.values():
            assert v in {"v3", "v4", "v5", "v6"}

    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: None,
            lambda: SilentAdversary(),
            lambda: RandomNoiseAdversary(seed=6),
            lambda: BurnScheduleAdversary(schedule=[2]),
        ],
    )
    def test_aa_on_random_trees(self, adversary_factory):
        rng = random.Random(9)
        tree = random_tree(25, seed=4)
        inputs = [rng.choice(tree.vertices) for _ in range(7)]
        outcome = self._run(tree, inputs, t=2, adversary=adversary_factory())
        assert outcome.achieved_aa

    @given(trees_with_vertex_choices(n_choices=7, min_vertices=2))
    def test_property_aa_when_path_meets_hull(self, tree_and_inputs):
        """Section 5's assumption is that the known path intersects the
        honest inputs' hull.  The diameter path may miss it — then the
        protocol's outputs are on the path but possibly outside the hull,
        so only run the check when the hypothesis holds."""
        tree, inputs = tree_and_inputs
        path = diameter_path(tree)
        honest_inputs = inputs[:5]  # parties 5, 6 are corrupted by default
        hull = convex_hull(tree, honest_inputs)
        outcome = run_path_aa(
            tree, path, inputs, t=2, adversary=SilentAdversary(), project=True
        )
        assert outcome.terminated
        if set(path.vertices) & hull:
            assert outcome.valid
        assert outcome.agreement

    def test_outputs_always_on_the_path(self):
        tree = random_tree(30, seed=8)
        rng = random.Random(0)
        inputs = [rng.choice(tree.vertices) for _ in range(7)]
        path = diameter_path(tree)
        outcome = run_path_aa(
            tree, path, inputs, t=2, adversary=BurnScheduleAdversary([1, 1]), project=True
        )
        canonical = path.canonical()
        for v in outcome.honest_outputs.values():
            assert v in canonical
