"""Tests for TreeAA — Theorem 4 (Section 7)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import (
    AdaptiveCrashAdversary,
    CrashAdversary,
    EchoAdversary,
    PassiveAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import (
    TreeAAParty,
    projection_phase_iterations,
    run_tree_aa,
)
from repro.core.paths_finder import paths_finder_duration
from repro.protocols import ROUNDS_PER_ITERATION, tree_aa_round_bound
from repro.trees import (
    LabeledTree,
    binary_tree,
    caterpillar_tree,
    diameter,
    figure_tree,
    path_tree,
    random_tree,
    spider_tree,
    star_tree,
)

from ..strategies import trees_with_vertex_choices

ADVERSARIES = {
    "none": lambda t: None,
    "silent": lambda t: SilentAdversary(),
    "passive": lambda t: PassiveAdversary(),
    "noise": lambda t: RandomNoiseAdversary(seed=3),
    "crash": lambda t: CrashAdversary(crash_round=6, partial_to=2),
    "echo": lambda t: EchoAdversary(),
    "burn": lambda t: BurnScheduleAdversary([1] * t),
    "burn-down": lambda t: BurnScheduleAdversary([t], direction="down"),
    "burn-late": lambda t: BurnScheduleAdversary([0, 0, 0, 0, 1] + [0] * 5 + [1]),
}


class TestTrivialTrees:
    def test_single_vertex(self):
        tree = LabeledTree(vertices=["only"])
        outcome = run_tree_aa(tree, ["only"] * 4, t=1)
        assert outcome.achieved_aa
        assert outcome.rounds == 0

    def test_single_edge(self):
        tree = LabeledTree(edges=[("a", "b")])
        outcome = run_tree_aa(tree, ["a", "b", "a", "b"], t=1)
        assert outcome.achieved_aa
        assert outcome.rounds == 0
        # each party returns its own input (the paper's trivial case)
        assert outcome.honest_outputs == {0: "a", 1: "b", 2: "a", 3: "b"}


class TestConstruction:
    def test_resilience_enforced(self):
        with pytest.raises(ValueError):
            TreeAAParty(0, 6, 2, figure_tree(), "v1")

    def test_input_validated(self):
        with pytest.raises(KeyError):
            TreeAAParty(0, 4, 1, figure_tree(), "zzz")

    def test_duration_is_sum_of_phases(self):
        tree = figure_tree()
        n, t = 7, 2
        party = TreeAAParty(0, n, t, tree, "v1")
        expected = paths_finder_duration(tree, n, t) + (
            ROUNDS_PER_ITERATION * projection_phase_iterations(tree, n, t)
        )
        assert party.duration == expected


class TestTheorem4AcrossFamilies:
    @pytest.mark.parametrize("adversary_name", sorted(ADVERSARIES))
    @pytest.mark.parametrize(
        "tree_factory",
        [
            lambda: figure_tree(),
            lambda: path_tree(17),
            lambda: star_tree(9),
            lambda: binary_tree(3),
            lambda: spider_tree(3, 4),
            lambda: caterpillar_tree(6, 2),
            lambda: random_tree(24, seed=5),
        ],
    )
    def test_aa_achieved(self, adversary_name, tree_factory):
        tree = tree_factory()
        n, t = 7, 2
        rng = random.Random(hash(adversary_name) % 1000)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        adversary = ADVERSARIES[adversary_name](t)
        outcome = run_tree_aa(tree, inputs, t, adversary=adversary)
        assert outcome.terminated
        assert outcome.valid, (adversary_name, outcome.honest_outputs)
        assert outcome.agreement, (adversary_name, outcome.output_diameter)

    @given(
        trees_with_vertex_choices(n_choices=7, min_vertices=2),
        st.sampled_from(["silent", "noise", "burn", "burn-down"]),
    )
    def test_property_random_trees(self, tree_and_inputs, adversary_name):
        tree, inputs = tree_and_inputs
        t = 2
        outcome = run_tree_aa(
            tree, inputs, t, adversary=ADVERSARIES[adversary_name](t)
        )
        assert outcome.achieved_aa

    def test_various_network_sizes(self):
        tree = random_tree(20, seed=13)
        rng = random.Random(4)
        for n in (4, 7, 10, 13):
            t = (n - 1) // 3
            inputs = [rng.choice(tree.vertices) for _ in range(n)]
            outcome = run_tree_aa(
                tree, inputs, t, adversary=BurnScheduleAdversary([1] * t)
            )
            assert outcome.achieved_aa, n

    def test_adaptive_corruption_mid_protocol(self):
        tree = random_tree(20, seed=2)
        rng = random.Random(8)
        n, t = 7, 2
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        outcome = run_tree_aa(
            tree,
            inputs,
            t,
            adversary=AdaptiveCrashAdversary(schedule={4: [1], 9: [5]}),
        )
        assert outcome.terminated and outcome.agreement
        # validity w.r.t. the remaining honest parties' inputs
        assert outcome.valid


class TestFigure5Scenario:
    """The short/long path clamp of TreeAA line 6."""

    def figure5_tree(self):
        """A spine v1..v7 where v6 also has a second neighbor (the red
        vertex) and honest inputs sit near the far end."""
        spine = [f"v{i}" for i in range(1, 8)]
        edges = [(spine[i], spine[i + 1]) for i in range(6)]
        edges.append(("v6", "w_red"))
        edges += [("v5", "u1"), ("v7", "u2"), ("v6", "u3")]
        return LabeledTree(edges=edges)

    def test_outputs_cluster_on_adjacent_spine_vertices(self):
        tree = self.figure5_tree()
        inputs = ["u1", "u2", "u3", "v6", "v7", "u1", "u2"]
        for schedule in ([2], [1, 1], [0, 1, 1]):
            outcome = run_tree_aa(
                tree, inputs, 2, adversary=BurnScheduleAdversary(schedule)
            )
            assert outcome.achieved_aa
            # the red vertex is never output: it lies outside the hull
            assert "w_red" not in set(outcome.honest_outputs.values())

    def test_clamp_path_exercised(self):
        """Drive the ProjectionPhaseParty clamp directly: closestInt beyond
        the own (shorter) path outputs the path's last vertex."""
        from repro.core.tree_aa import ProjectionPhaseParty
        from repro.trees import TreePath

        tree = self.figure5_tree()
        path = TreePath(["v1", "v2", "v3"])
        party = ProjectionPhaseParty(0, 4, 1, tree, path, "v1", iterations=1)
        party.value = 3.2  # beyond the path's last position (2)
        assert party._final_output() == "v3"


class TestAdjacentOutputExecutions:
    """Executions where honest parties output two *different* (adjacent)
    vertices — 1-agreement's boundary, reachable only when the adversary
    can afford a burn in the very last iteration of both phases."""

    @pytest.mark.parametrize(
        "seed,direction",
        [(9, "up"), (10, "down"), (17, "down"), (39, "down")],
    )
    def test_split_outputs_still_satisfy_aa(self, seed, direction):
        from repro.core import projection_phase_iterations
        from repro.protocols import realaa_iterations
        from repro.trees import list_construction

        n, t = 13, 4
        tree = random_tree(11, seed)
        euler = list_construction(tree)
        it1 = realaa_iterations(float(len(euler) - 1), 1.0, n, t)
        it2 = projection_phase_iterations(tree, n, t)
        rng = random.Random(seed)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        # spend every burn in phase 2 so the final range stays just under 1
        schedule = [0] * it1 + [1] * min(t, it2)
        outcome = run_tree_aa(
            tree,
            inputs,
            t,
            adversary=BurnScheduleAdversary(schedule, direction=direction),
        )
        assert outcome.achieved_aa
        # (whether the split materialises depends on rounding landings; the
        # known-split configurations below pin one down)

    def test_known_split_execution(self):
        """A pinned execution with two adjacent honest outputs."""
        from repro.core import projection_phase_iterations
        from repro.protocols import realaa_iterations
        from repro.trees import list_construction

        n, t, seed = 13, 4, 9
        tree = random_tree(11, seed)
        euler = list_construction(tree)
        it1 = realaa_iterations(float(len(euler) - 1), 1.0, n, t)
        it2 = projection_phase_iterations(tree, n, t)
        rng = random.Random(seed)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        schedule = [0] * it1 + [1] * min(4, it2)
        outcome = run_tree_aa(
            tree, inputs, t, adversary=BurnScheduleAdversary(schedule, direction="up")
        )
        outputs = set(outcome.honest_outputs.values())
        assert len(outputs) == 2
        u, v = sorted(outputs)
        assert tree.adjacent(u, v)
        assert outcome.achieved_aa


class TestRoundComplexity:
    def test_within_theorem4_budget(self):
        for tree in (path_tree(63), random_tree(63, seed=1), star_tree(62)):
            n, t = 7, 2
            rng = random.Random(0)
            inputs = [rng.choice(tree.vertices) for _ in range(n)]
            outcome = run_tree_aa(tree, inputs, t, adversary=SilentAdversary())
            assert outcome.rounds <= tree_aa_round_bound(
                tree.n_vertices, diameter(tree)
            )

    def test_sublogarithmic_scaling(self):
        """Rounds grow like log V / log log V: quadrupling the exponent of
        |V| must far less than quadruple the rounds."""
        rounds = {}
        for k in (2**4, 2**10):
            tree = path_tree(k)
            inputs = [tree.vertices[0], tree.vertices[k - 1]] * 3 + [
                tree.vertices[0]
            ]
            outcome = run_tree_aa(tree, inputs, 2, adversary=SilentAdversary())
            rounds[k] = outcome.rounds
        assert rounds[2**10] < 2.6 * rounds[2**4]

    def test_all_honest_agree_simultaneously_by_design(self):
        """Every honest party runs the same fixed number of rounds (the
        synchronized barrier of TreeAA line 4)."""
        tree = random_tree(15, seed=3)
        n, t = 7, 2
        durations = {
            TreeAAParty(pid, n, t, tree, tree.vertices[0]).duration
            for pid in range(n)
        }
        assert len(durations) == 1
