"""Tests for the Section-4 warm-up protocol: AA on paths."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import (
    CrashAdversary,
    PassiveAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import PathAAParty, run_path_aa
from repro.trees import TreePath, path_tree


def path_and_tree(k):
    tree = path_tree(k)
    return tree, TreePath(tree.vertices)


class TestConstruction:
    def test_requires_canonical_orientation(self):
        tree, path = path_and_tree(4)
        with pytest.raises(ValueError, match="canonical"):
            PathAAParty(0, 4, 1, path.reversed(), path.end)

    def test_input_must_be_on_path(self):
        tree, path = path_and_tree(4)
        with pytest.raises(KeyError):
            PathAAParty(0, 4, 1, path, "zzz")


class TestFaultFree:
    def test_identical_inputs(self):
        tree, path = path_and_tree(9)
        v = path[4]
        outcome = run_path_aa(tree, path, [v] * 4, t=0)
        assert set(outcome.honest_outputs.values()) == {v}
        assert outcome.achieved_aa

    def test_split_inputs_meet_in_the_middle(self):
        tree, path = path_and_tree(9)
        inputs = [path[0], path[8], path[0], path[8]]
        outcome = run_path_aa(tree, path, inputs, t=0)
        assert outcome.achieved_aa
        assert set(outcome.honest_outputs.values()) == {path[4]}


class TestUnderAdversaries:
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: SilentAdversary(),
            lambda: PassiveAdversary(),
            lambda: RandomNoiseAdversary(seed=2),
            lambda: CrashAdversary(crash_round=2, partial_to=3),
            lambda: BurnScheduleAdversary(schedule=[1, 1]),
        ],
    )
    def test_aa_achieved(self, adversary_factory):
        tree, path = path_and_tree(33)
        n, t = 7, 2
        rng = random.Random(5)
        inputs = [rng.choice(path.vertices) for _ in range(n)]
        outcome = run_path_aa(tree, path, inputs, t, adversary=adversary_factory())
        assert outcome.achieved_aa

    @given(
        st.integers(min_value=2, max_value=40),
        st.lists(st.integers(min_value=0, max_value=1000), min_size=7, max_size=7),
        st.sampled_from(["silent", "burn"]),
    )
    def test_property_validity_and_agreement(self, k, picks, kind):
        tree, path = path_and_tree(k)
        inputs = [path[p % k] for p in picks]
        adversary = (
            SilentAdversary() if kind == "silent" else BurnScheduleAdversary([1, 1])
        )
        outcome = run_path_aa(tree, path, inputs, t=2, adversary=adversary)
        assert outcome.terminated
        assert outcome.valid
        assert outcome.agreement

    def test_outputs_within_honest_positions(self):
        """Remark 1 made concrete: outputs lie between the extreme honest
        input positions, never outside."""
        tree, path = path_and_tree(21)
        inputs = [path[5], path[10], path[15], path[8], path[12], path[0], path[20]]
        outcome = run_path_aa(
            tree, path, inputs, t=2, adversary=BurnScheduleAdversary([2])
        )
        positions = [path.position_of(v) for v in outcome.honest_outputs.values()]
        assert all(5 <= p <= 15 for p in positions)

    def test_reversed_input_order_is_normalised(self):
        """run_path_aa canonicalises the path so any orientation works."""
        tree, path = path_and_tree(7)
        inputs = [path[1]] * 4
        outcome = run_path_aa(tree, path.reversed(), inputs, t=1)
        assert set(outcome.honest_outputs.values()) == {path[1]}


class TestRoundComplexity:
    def test_rounds_grow_sublinearly_with_length(self):
        rounds = {}
        for k in (8, 64, 512):
            tree, path = path_and_tree(k)
            inputs = [path[0], path[k - 1]] * 2
            outcome = run_path_aa(tree, path, inputs[:4], t=1)
            rounds[k] = outcome.rounds
        assert rounds[64] <= rounds[8] * 3
        assert rounds[512] <= rounds[8] * 4
