"""The final-output validity guards must be real exceptions, not asserts.

``python -O`` strips ``assert`` statements; a RealAA-validity violation
(an engine bug) would then surface as a wrong output or an ``IndexError``
deep in the path lookup.  These tests drive each guard directly and — the
actual regression — re-run one of them in a ``python -O`` subprocess.
"""

import os
import subprocess
import sys

import pytest

from repro.core import ValidityViolationError
from repro.core.path_aa import PathAAParty
from repro.core.paths_finder import PathsFinderParty
from repro.core.projection_aa import KnownPathAAParty
from repro.core.tree_aa import ProjectionPhaseParty
from repro.trees import diameter_path, path_tree

N, T = 4, 1


def _tree_and_path():
    tree = path_tree(5)
    return tree, diameter_path(tree).canonical()


class TestGuardsRaise:
    def test_known_path_party_guard(self):
        tree, path = _tree_and_path()
        party = KnownPathAAParty(0, N, T, tree, path, tree.vertices[0])
        party.value = 1e9
        with pytest.raises(ValidityViolationError, match="validity"):
            party._final_output()

    def test_path_aa_party_guard(self):
        tree, path = _tree_and_path()
        party = PathAAParty(0, N, T, path, path[0])
        party.value = -50.0
        with pytest.raises(ValidityViolationError, match="validity"):
            party._final_output()

    def test_paths_finder_party_guard(self):
        tree, _ = _tree_and_path()
        party = PathsFinderParty(0, N, T, tree, tree.vertices[0])
        party.value = 1e9
        with pytest.raises(ValidityViolationError, match="validity"):
            party._final_output()

    def test_projection_phase_negative_guard(self):
        tree, path = _tree_and_path()
        party = ProjectionPhaseParty(
            0, N, T, tree, path, tree.vertices[0], iterations=1
        )
        party.value = -3.0
        with pytest.raises(ValidityViolationError, match="validity"):
            party._final_output()

    def test_in_range_value_does_not_raise(self):
        tree, path = _tree_and_path()
        party = KnownPathAAParty(0, N, T, tree, path, tree.vertices[0])
        party.value = 1.0
        assert party._final_output() == path[1]


_O_SCRIPT = """
from repro.core import ValidityViolationError
from repro.core.projection_aa import KnownPathAAParty
from repro.trees import diameter_path, path_tree

assert not __debug__, "this script must run under python -O"
tree = path_tree(5)
path = diameter_path(tree).canonical()
party = KnownPathAAParty(0, 4, 1, tree, path, tree.vertices[0])
party.value = 1e9
try:
    party._final_output()
except ValidityViolationError:
    print("GUARDED")
else:
    raise SystemExit("validity guard did not fire under -O")
"""


def test_guard_survives_python_O():
    """Run the guard in ``python -O``: a bare assert would be stripped."""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.run(
        [sys.executable, "-O", "-c", _O_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    assert "GUARDED" in proc.stdout
