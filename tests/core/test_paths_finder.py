"""Tests for PathsFinder — Lemma 3 and Lemma 4 (Section 6)."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import (
    CrashAdversary,
    PassiveAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import PathsFinderParty, paths_finder_duration
from repro.core.paths_finder import paths_finder_duration as duration_fn
from repro.net import run_protocol
from repro.trees import (
    convex_hull,
    figure_tree,
    list_construction,
    path_tree,
    random_tree,
)

from ..strategies import trees_with_vertex_choices


def run_paths_finder(tree, inputs, t, adversary=None):
    n = len(inputs)
    return run_protocol(
        n,
        t,
        lambda pid: PathsFinderParty(pid, n, t, tree, inputs[pid]),
        adversary=adversary,
    )


def check_lemma4(tree, honest_inputs, paths):
    """Assert both Lemma-4 properties on the honest parties' paths."""
    hull = convex_hull(tree, honest_inputs)
    # Property 1: every path intersects the honest inputs' convex hull.
    for path in paths:
        assert any(v in hull for v in path.vertices), (path, sorted(hull))
    # Property 2: all paths share a prefix; at most one trailing edge differs.
    longest = max(paths, key=len)
    for path in paths:
        assert path == longest or (
            len(path) == len(longest) - 1 and path.is_prefix_of(longest)
        ), (list(path.vertices), list(longest.vertices))


class TestBasics:
    def test_input_validated(self):
        with pytest.raises(KeyError):
            PathsFinderParty(0, 4, 1, figure_tree(), "zzz")

    def test_input_index_is_min_occurrence(self):
        party = PathsFinderParty(0, 4, 1, figure_tree(), "v3")
        euler = list_construction(figure_tree())
        assert party.input_value == float(euler.first_occurrence("v3"))

    def test_paths_start_at_root(self):
        result = run_paths_finder(figure_tree(), ["v6", "v5", "v3", "v6"], t=0)
        for path in result.honest_outputs.values():
            assert path.start == "v1"

    def test_duration_formula(self):
        tree = figure_tree()
        assert duration_fn(tree, 7, 2) == PathsFinderParty(0, 7, 2, tree, "v1").duration

    def test_selected_vertex_recorded(self):
        result = run_paths_finder(figure_tree(), ["v6", "v6", "v6", "v6"], t=0)
        for pid, path in result.honest_outputs.items():
            assert result.parties[pid].selected_vertex == path.end


class TestFigure4Scenario:
    """Honest inputs v3, v6, v5: RealAA may land on indices of v4/v8, which
    are invalid vertices — but their root paths still cross the hull."""

    def test_all_possible_landings_yield_hull_crossing_paths(self):
        tree = figure_tree()
        euler = list_construction(tree)
        honest = ["v3", "v6", "v5"]
        hull = convex_hull(tree, honest)
        indices = [euler.first_occurrence(v) for v in honest]
        lo, hi = min(indices), max(indices)
        rooted = euler.rooted
        for i in range(lo, hi + 1):
            landing = euler[i]
            root_path = rooted.root_path(landing)
            assert any(v in hull for v in root_path)  # Lemma 3

    def test_execution_on_figure_inputs(self):
        tree = figure_tree()
        inputs = ["v3", "v6", "v5", "v3", "v6", "v5", "v3"]
        result = run_paths_finder(tree, inputs, t=2, adversary=BurnScheduleAdversary([1, 1]))
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        check_lemma4(tree, honest_inputs, list(result.honest_outputs.values()))


class TestLemma4:
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: None,
            lambda: SilentAdversary(),
            lambda: PassiveAdversary(),
            lambda: RandomNoiseAdversary(seed=12),
            lambda: CrashAdversary(crash_round=5, partial_to=2),
            lambda: BurnScheduleAdversary(schedule=[1, 1]),
            lambda: BurnScheduleAdversary(schedule=[2], direction="down"),
        ],
    )
    def test_lemma4_random_tree(self, adversary_factory):
        tree = random_tree(30, seed=21)
        rng = random.Random(7)
        inputs = [rng.choice(tree.vertices) for _ in range(7)]
        result = run_paths_finder(tree, inputs, t=2, adversary=adversary_factory())
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        check_lemma4(tree, honest_inputs, list(result.honest_outputs.values()))

    @given(
        trees_with_vertex_choices(n_choices=7, min_vertices=2),
        st.sampled_from(["silent", "noise", "burn", "burn-down"]),
    )
    def test_lemma4_property(self, tree_and_inputs, kind):
        tree, inputs = tree_and_inputs
        adversary = {
            "silent": lambda: SilentAdversary(),
            "noise": lambda: RandomNoiseAdversary(seed=1),
            "burn": lambda: BurnScheduleAdversary([1, 1]),
            "burn-down": lambda: BurnScheduleAdversary([2], direction="down"),
        }[kind]()
        result = run_paths_finder(tree, inputs, t=2, adversary=adversary)
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        check_lemma4(tree, honest_inputs, list(result.honest_outputs.values()))

    def test_split_paths_execution(self):
        """A pinned execution where the adversary forces two different
        (prefix-coherent) paths — Lemma 4 property 2's non-trivial case.
        Requires the burn budget to cover every iteration (small tree,
        larger t), since any clean iteration collapses the range exactly."""
        from repro.protocols import realaa_iterations

        n, t, seed = 13, 4, 9
        tree = random_tree(11, seed)
        euler = list_construction(tree)
        iterations = realaa_iterations(float(len(euler) - 1), 1.0, n, t)
        assert iterations <= t  # the regime in which splits are reachable
        rng = random.Random(seed)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        result = run_protocol(
            n,
            t,
            lambda pid: PathsFinderParty(pid, n, t, tree, inputs[pid]),
            adversary=BurnScheduleAdversary([1] * iterations, direction="down"),
        )
        paths = list(result.honest_outputs.values())
        assert len({p.vertices for p in paths}) == 2
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        check_lemma4(tree, honest_inputs, paths)

    def test_termination_within_declared_rounds(self):
        tree = path_tree(50)
        inputs = [tree.vertices[0], tree.vertices[49]] * 3 + [tree.vertices[25]]
        result = run_paths_finder(tree, inputs, t=2, adversary=SilentAdversary())
        assert result.trace.rounds_executed == duration_fn(tree, 7, 2)
