"""Tests for the high-level run_* API and its AA verdicts."""

import pytest

from repro.adversary import Adversary, SilentAdversary
from repro.core import run_path_aa, run_real_aa, run_tree_aa
from repro.net.faults import FaultPlan
from repro.net.network import TraceLevel
from repro.trees import TreePath, figure_tree, path_tree


class TestRunTreeAA:
    def test_outcome_fields(self):
        tree = figure_tree()
        outcome = run_tree_aa(tree, ["v3", "v6", "v5", "v3"], t=1, adversary=SilentAdversary())
        assert outcome.tree is tree
        assert sorted(outcome.honest_inputs) == [0, 1, 2]
        assert set(outcome.honest_outputs) == {0, 1, 2}
        assert outcome.rounds > 0
        assert outcome.achieved_aa

    def test_no_adversary_means_everyone_honest(self):
        outcome = run_tree_aa(figure_tree(), ["v3", "v6", "v5", "v3"], t=1)
        assert len(outcome.honest_outputs) == 4

    def test_verdicts_detect_invalid_outputs(self):
        """Force a bogus output and check the verdict machinery catches it."""
        from repro.core.api import _evaluate_tree_outputs

        tree = figure_tree()
        verdicts = _evaluate_tree_outputs(
            tree, {0: "v6", 1: "v6"}, {0: "v6", 1: "v5"}
        )
        assert verdicts["terminated"]
        assert not verdicts["valid"]  # v5 outside hull {v6}
        assert verdicts["output_diameter"] == 3
        assert not verdicts["agreement"]

    def test_verdicts_detect_missing_output(self):
        from repro.core.api import _evaluate_tree_outputs

        verdicts = _evaluate_tree_outputs(figure_tree(), {0: "v6"}, {0: None})
        assert not verdicts["terminated"]
        assert not verdicts["valid"]


class TestRunPathAA:
    def test_project_flag_controls_party_type(self):
        tree = figure_tree()
        # v6 is not on the v1..v5 spine, so project=False must fail...
        spine = TreePath(["v1", "v2", "v5"])
        with pytest.raises(KeyError):
            run_path_aa(tree, spine, ["v6", "v5", "v1", "v2"], t=1)
        # ...while project=True projects it onto the spine.
        outcome = run_path_aa(
            tree, spine, ["v6", "v5", "v1", "v2"], t=1, project=True
        )
        assert outcome.terminated


class TestRunPathAAResilienceHooks:
    """Regression: ``run_path_aa`` threads the resilience-lab hooks.

    The reference route used to lack ``fault_plan`` / ``trace_level`` /
    ``t_assumed`` entirely, and the batch route silently dropped the
    fault plan and hardcoded the trace level — so a degradation sweep
    over PathAA ran clean while claiming to inject faults.  Both routes
    must accept the hooks and agree on their effect.
    """

    TREE = figure_tree()
    SPINE = TreePath(["v1", "v2", "v5"])
    INPUTS = ["v1", "v5", "v1", "v2", "v5"]

    def _run(self, backend, plan):
        return run_path_aa(
            self.TREE,
            self.SPINE,
            self.INPUTS,
            t=2,
            trace_level=TraceLevel.FULL,
            fault_plan=plan,
            t_assumed=1,
            backend=backend,
        )

    def test_hooks_accepted_and_backends_agree(self):
        plans = {
            backend: FaultPlan(
                drop=0.3, duplicate=0.2, seed=11, allow_model_violations=True
            )
            for backend in ("reference", "batch")
        }
        outcomes = {b: self._run(b, plans[b]) for b in plans}
        reference, batch = outcomes["reference"], outcomes["batch"]
        ref_trace, bat_trace = reference.execution.trace, batch.execution.trace
        # The plan actually reached the network on both routes...
        assert ref_trace.faults_dropped + ref_trace.faults_duplicated > 0
        # ...and the routes agree on everything observable.
        assert batch.honest_outputs == reference.honest_outputs
        assert bat_trace.faults_dropped == ref_trace.faults_dropped
        assert bat_trace.faults_duplicated == ref_trace.faults_duplicated
        assert bat_trace.faults_corrupted == ref_trace.faults_corrupted
        assert bat_trace.rounds_executed == ref_trace.rounds_executed

    def test_t_assumed_changes_the_party_tolerance(self):
        # With n = 5 parties a tolerance of t = 2 is over the n/3 bound
        # the parties enforce; t_assumed = 1 is how degradation sweeps
        # cross it.  Omitting t_assumed must therefore raise on both
        # routes, and supplying it must succeed on both.
        for backend in ("reference", "batch"):
            with pytest.raises(ValueError):
                run_path_aa(
                    self.TREE, self.SPINE, self.INPUTS, t=2, backend=backend
                )
            outcome = run_path_aa(
                self.TREE,
                self.SPINE,
                self.INPUTS,
                t=2,
                t_assumed=1,
                backend=backend,
            )
            assert outcome.terminated


class TestRunRealAA:
    def test_default_known_range_is_input_spread(self):
        outcome = run_real_aa([0.0, 4.0, 2.0, 3.0], t=1, epsilon=0.5)
        assert outcome.achieved_aa

    def test_explicit_iterations(self):
        outcome = run_real_aa([0.0, 4.0, 2.0, 3.0], t=1, epsilon=0.5, iterations=3)
        assert outcome.rounds == 9

    def test_spread_and_agreement_fields(self):
        outcome = run_real_aa(
            [0.0, 10.0, 5.0, 5.0, 5.0, 5.0, 5.0],
            t=2,
            epsilon=0.5,
            adversary=SilentAdversary(),
        )
        assert outcome.output_spread <= 0.5
        assert outcome.agreement
        assert outcome.valid

    def test_measured_rounds_none_until_observed(self):
        """Local termination fires when a party *observes* its accepted
        trimmed range ≤ ε.  In iteration 1 the observed range is still the
        input spread, so a 1-iteration run records no local termination;
        a second iteration observes the collapse."""
        one = run_real_aa(
            [0.0, 100.0, 0.0, 100.0], t=1, epsilon=1e-9, iterations=1
        )
        assert one.measured_rounds is None
        assert one.agreement  # outputs coincide even though unobserved

        two = run_real_aa(
            [0.0, 100.0, 0.0, 100.0], t=1, epsilon=1e-9, iterations=2
        )
        assert two.measured_rounds == 6
