"""Tests for the high-level run_* API and its AA verdicts."""

import pytest

from repro.adversary import Adversary, SilentAdversary
from repro.core import run_path_aa, run_real_aa, run_tree_aa
from repro.trees import TreePath, figure_tree, path_tree


class TestRunTreeAA:
    def test_outcome_fields(self):
        tree = figure_tree()
        outcome = run_tree_aa(tree, ["v3", "v6", "v5", "v3"], t=1, adversary=SilentAdversary())
        assert outcome.tree is tree
        assert sorted(outcome.honest_inputs) == [0, 1, 2]
        assert set(outcome.honest_outputs) == {0, 1, 2}
        assert outcome.rounds > 0
        assert outcome.achieved_aa

    def test_no_adversary_means_everyone_honest(self):
        outcome = run_tree_aa(figure_tree(), ["v3", "v6", "v5", "v3"], t=1)
        assert len(outcome.honest_outputs) == 4

    def test_verdicts_detect_invalid_outputs(self):
        """Force a bogus output and check the verdict machinery catches it."""
        from repro.core.api import _evaluate_tree_outputs

        tree = figure_tree()
        verdicts = _evaluate_tree_outputs(
            tree, {0: "v6", 1: "v6"}, {0: "v6", 1: "v5"}
        )
        assert verdicts["terminated"]
        assert not verdicts["valid"]  # v5 outside hull {v6}
        assert verdicts["output_diameter"] == 3
        assert not verdicts["agreement"]

    def test_verdicts_detect_missing_output(self):
        from repro.core.api import _evaluate_tree_outputs

        verdicts = _evaluate_tree_outputs(figure_tree(), {0: "v6"}, {0: None})
        assert not verdicts["terminated"]
        assert not verdicts["valid"]


class TestRunPathAA:
    def test_project_flag_controls_party_type(self):
        tree = figure_tree()
        # v6 is not on the v1..v5 spine, so project=False must fail...
        spine = TreePath(["v1", "v2", "v5"])
        with pytest.raises(KeyError):
            run_path_aa(tree, spine, ["v6", "v5", "v1", "v2"], t=1)
        # ...while project=True projects it onto the spine.
        outcome = run_path_aa(
            tree, spine, ["v6", "v5", "v1", "v2"], t=1, project=True
        )
        assert outcome.terminated


class TestRunRealAA:
    def test_default_known_range_is_input_spread(self):
        outcome = run_real_aa([0.0, 4.0, 2.0, 3.0], t=1, epsilon=0.5)
        assert outcome.achieved_aa

    def test_explicit_iterations(self):
        outcome = run_real_aa([0.0, 4.0, 2.0, 3.0], t=1, epsilon=0.5, iterations=3)
        assert outcome.rounds == 9

    def test_spread_and_agreement_fields(self):
        outcome = run_real_aa(
            [0.0, 10.0, 5.0, 5.0, 5.0, 5.0, 5.0],
            t=2,
            epsilon=0.5,
            adversary=SilentAdversary(),
        )
        assert outcome.output_spread <= 0.5
        assert outcome.agreement
        assert outcome.valid

    def test_measured_rounds_none_until_observed(self):
        """Local termination fires when a party *observes* its accepted
        trimmed range ≤ ε.  In iteration 1 the observed range is still the
        input spread, so a 1-iteration run records no local termination;
        a second iteration observes the collapse."""
        one = run_real_aa(
            [0.0, 100.0, 0.0, 100.0], t=1, epsilon=1e-9, iterations=1
        )
        assert one.measured_rounds is None
        assert one.agreement  # outputs coincide even though unobserved

        two = run_real_aa(
            [0.0, 100.0, 0.0, 100.0], t=1, epsilon=1e-9, iterations=2
        )
        assert two.measured_rounds == 6
