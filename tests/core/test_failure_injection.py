"""Failure-injection tests: randomized crash/corruption timing vs TreeAA.

Hypothesis drives *when* things fail — adaptive corruption rounds, partial
crash boundaries, mixed strategies — to probe timing-sensitive state in
the phased composition (phase boundaries, gradecast rounds, iteration
ends).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import (
    AdaptiveCrashAdversary,
    ChaosAdversary,
    CrashAdversary,
)
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import TreeAAParty, run_real_aa, run_tree_aa
from repro.trees import random_tree

N, T = 7, 2
TREE = random_tree(18, seed=42)
DURATION = TreeAAParty(0, N, T, TREE, TREE.vertices[0]).duration


def tree_inputs(seed):
    rng = random.Random(seed)
    return [rng.choice(TREE.vertices) for _ in range(N)]


class TestCrashTiming:
    @given(
        st.integers(min_value=0, max_value=DURATION),
        st.integers(min_value=0, max_value=N),
        st.integers(min_value=0, max_value=50),
    )
    def test_partial_crash_at_any_round(self, crash_round, partial_to, seed):
        outcome = run_tree_aa(
            TREE,
            tree_inputs(seed),
            T,
            adversary=CrashAdversary(crash_round=crash_round, partial_to=partial_to),
        )
        assert outcome.achieved_aa

    @given(
        st.lists(
            st.integers(min_value=0, max_value=DURATION - 1),
            min_size=1,
            max_size=2,
            unique=True,
        ),
        st.integers(min_value=0, max_value=50),
    )
    def test_adaptive_corruption_at_any_rounds(self, corruption_rounds, seed):
        """Seize up to t honest parties at arbitrary rounds, silencing them.
        The parties corrupted mid-run no longer count as honest; AA must
        still hold among the remainder."""
        schedule = {
            round_index: [pid]
            for round_index, pid in zip(sorted(corruption_rounds), range(N))
        }
        outcome = run_tree_aa(
            TREE,
            tree_inputs(seed),
            T,
            adversary=AdaptiveCrashAdversary(schedule=schedule),
        )
        assert outcome.terminated
        assert outcome.agreement
        assert outcome.valid

    def test_crash_exactly_at_phase_boundary(self):
        """The barrier between PathsFinder and the projection phase is the
        most state-sensitive round; crash right on it."""
        from repro.core.paths_finder import paths_finder_duration

        boundary = paths_finder_duration(TREE, N, T)
        for offset in (-1, 0, 1):
            outcome = run_tree_aa(
                TREE,
                tree_inputs(3),
                T,
                adversary=CrashAdversary(crash_round=boundary + offset, partial_to=2),
            )
            assert outcome.achieved_aa, offset


class TestMixedFailures:
    @given(st.integers(min_value=0, max_value=200))
    def test_chaos_at_any_seed(self, seed):
        outcome = run_tree_aa(
            TREE, tree_inputs(seed), T, adversary=ChaosAdversary(seed=seed)
        )
        assert outcome.achieved_aa

    @given(
        st.lists(
            st.integers(min_value=0, max_value=2), min_size=2, max_size=8
        ).filter(lambda schedule: sum(schedule) <= T),
        st.integers(min_value=0, max_value=30),
    )
    def test_arbitrary_burn_schedules(self, schedule, seed):
        outcome = run_tree_aa(
            TREE,
            tree_inputs(seed),
            T,
            adversary=BurnScheduleAdversary(schedule),
        )
        assert outcome.achieved_aa

    @given(
        st.floats(min_value=-1e6, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e6),
        st.integers(min_value=0, max_value=20),
    )
    def test_realaa_arbitrary_input_windows(self, base, width, seed):
        rng = random.Random(seed)
        inputs = [base + rng.uniform(0, width) for _ in range(N)]
        outcome = run_real_aa(
            inputs,
            T,
            epsilon=max(1e-6, width / 1000),
            known_range=max(width, 1e-6),
            adversary=ChaosAdversary(seed=seed),
        )
        assert outcome.terminated
        assert outcome.valid
        assert outcome.agreement
