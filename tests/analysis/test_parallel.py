"""The parallel sweep engine: determinism, ordering, and the result cache."""

import json

import pytest

from repro.analysis import (
    SweepCache,
    get_runner,
    grid_from_axes,
    point_seed,
    run_grid,
)

#: A small but real grid — four TreeAA-vs-baseline points on tiny paths.
GRID = [
    {"family": "path", "tree": f"path:{size}", "n": 4, "t": 1, "seed": size}
    for size in (5, 7, 9, 11)
]


class TestDeterminism:
    def test_serial_matches_direct_call(self):
        from dataclasses import asdict

        from repro.analysis import run_tree_point
        from repro.trees import path_tree

        report = run_grid("det", "tree-point", GRID[:1], jobs=1, no_cache=True)
        direct = run_tree_point("path", path_tree(5), 4, 1, seed=5)
        assert report.rows == [asdict(direct)]

    def test_parallel_matches_serial_row_for_row(self):
        serial = run_grid("det", "tree-point", GRID, jobs=1, no_cache=True)
        parallel = run_grid("det", "tree-point", GRID, jobs=2, no_cache=True)
        assert serial.rows == parallel.rows
        assert [row["n_vertices"] for row in parallel.rows] == [5, 7, 9, 11]

    def test_repeat_runs_are_identical(self):
        first = run_grid("det", "tree-point", GRID, jobs=2, no_cache=True)
        second = run_grid("det", "tree-point", GRID, jobs=2, no_cache=True)
        assert first.rows == second.rows

    def test_jobs_zero_means_cpu_count(self):
        report = run_grid(
            "det", "tree-point", GRID[:1], jobs=0, no_cache=True
        )
        assert report.jobs >= 1

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_grid("det", "tree-point", GRID[:1], jobs=-1, no_cache=True)


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cold = run_grid("c", "tree-point", GRID, jobs=1, cache_dir=str(tmp_path))
        assert (cold.cache_hits, cold.cache_misses) == (0, 4)
        warm = run_grid("c", "tree-point", GRID, jobs=1, cache_dir=str(tmp_path))
        assert (warm.cache_hits, warm.cache_misses) == (4, 0)
        assert warm.rows == cold.rows

    def test_partial_grid_recomputes_only_missing(self, tmp_path):
        run_grid("c", "tree-point", GRID[:2], jobs=1, cache_dir=str(tmp_path))
        report = run_grid("c", "tree-point", GRID, jobs=1, cache_dir=str(tmp_path))
        assert (report.cache_hits, report.cache_misses) == (2, 2)

    def test_version_bump_invalidates(self, tmp_path):
        run_grid(
            "c", "tree-point", GRID, jobs=1, cache_dir=str(tmp_path), version="1"
        )
        bumped = run_grid(
            "c", "tree-point", GRID, jobs=1, cache_dir=str(tmp_path), version="2"
        )
        assert (bumped.cache_hits, bumped.cache_misses) == (0, 4)

    def test_different_sweep_name_is_a_different_namespace(self, tmp_path):
        run_grid("c1", "tree-point", GRID[:1], jobs=1, cache_dir=str(tmp_path))
        other = run_grid("c2", "tree-point", GRID[:1], jobs=1, cache_dir=str(tmp_path))
        assert other.cache_misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        run_grid("c", "tree-point", GRID[:1], jobs=1, cache_dir=str(tmp_path))
        (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
        entry.write_text("{not json")
        report = run_grid("c", "tree-point", GRID[:1], jobs=1, cache_dir=str(tmp_path))
        assert report.cache_misses == 1

    def test_no_cache_writes_nothing(self, tmp_path):
        run_grid(
            "c",
            "tree-point",
            GRID[:1],
            jobs=1,
            cache_dir=str(tmp_path),
            no_cache=True,
        )
        assert list(tmp_path.iterdir()) == []

    def test_entries_store_auditable_keys(self, tmp_path):
        run_grid("c", "tree-point", GRID[:1], jobs=1, cache_dir=str(tmp_path))
        (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
        stored = json.loads(entry.read_text())
        assert stored["key"]["sweep"] == "c"
        assert stored["key"]["params"]["tree"] == "path:5"
        assert stored["row"]["n_vertices"] == 5

    def test_cache_len(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        assert len(cache) == 0
        key = SweepCache.key("s", "r", {"a": 1}, 0, version="v")
        cache.put(key, {"x": 1})
        assert len(cache) == 1
        assert cache.get(key) == {"x": 1}


class TestSeeds:
    def test_explicit_seed_wins(self):
        assert point_seed("s", {"a": 1, "seed": 42}) == 42

    def test_derived_seed_is_stable_and_param_sensitive(self):
        a = point_seed("s", {"a": 1})
        assert a == point_seed("s", {"a": 1})
        assert a != point_seed("s", {"a": 2})
        assert a != point_seed("other", {"a": 1})
        assert a != point_seed("s", {"a": 1}, base_seed=1)


class TestGridHelpers:
    def test_grid_from_axes_product_and_order(self):
        grid = grid_from_axes(x=[1, 2], y=["a", "b"])
        assert grid == [
            {"x": 1, "y": "a"},
            {"x": 1, "y": "b"},
            {"x": 2, "y": "a"},
            {"x": 2, "y": "b"},
        ]

    def test_unknown_runner_raises(self):
        with pytest.raises(KeyError):
            get_runner("no-such-runner")

    def test_dotted_path_runner_resolves(self):
        from repro.analysis.sweep import tree_point_runner

        assert (
            get_runner("repro.analysis.sweep:tree_point_runner")
            is tree_point_runner
        )


class TestSweepJsonl:
    def test_jsonl_persists_every_point(self, tmp_path):
        from repro.analysis import SWEEP_SCHEMA_VERSION, point_seed

        path = tmp_path / "sweep.jsonl"
        report = run_grid(
            "j", "tree-point", GRID, jobs=1, no_cache=True,
            jsonl_path=str(path),
        )
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        header, points, footer = records[0], records[1:-1], records[-1]
        assert header["type"] == "sweep_header"
        assert header["schema_version"] == SWEEP_SCHEMA_VERSION
        assert header["sweep"] == "j"
        assert header["runner"] == "tree-point"
        assert footer["type"] == "sweep_footer"
        assert footer["points"] == len(GRID)
        assert len(points) == len(GRID)
        for index, (point, params, row) in enumerate(
            zip(points, GRID, report.rows)
        ):
            assert point["type"] == "point"
            assert point["index"] == index
            assert point["params"] == params
            assert point["seed"] == point_seed("j", params)
            assert point["row"] == row

    def test_no_jsonl_by_default(self, tmp_path):
        run_grid("j", "tree-point", GRID[:1], jobs=1, no_cache=True)
        assert list(tmp_path.iterdir()) == []

    def test_metrics_param_embeds_collector_summary(self):
        params = dict(GRID[0])
        plain = run_grid("m", "tree-point", [params], jobs=1, no_cache=True)
        assert "metrics" not in plain.rows[0]

        enriched = run_grid(
            "m", "tree-point", [{**params, "metrics": True}],
            jobs=1, no_cache=True,
        )
        metrics = enriched.rows[0]["metrics"]
        assert metrics["rounds"] == enriched.rows[0]["tree_rounds"]
        assert metrics["messages"] == (
            metrics["honest_messages"] + metrics["byzantine_messages"]
        )
        # the metrics key is the only difference: detached rows untouched
        stripped = {
            k: v for k, v in enriched.rows[0].items() if k != "metrics"
        }
        assert stripped == plain.rows[0]


class TestRealAARunner:
    def test_realaa_point_runner_smoke(self):
        report = run_grid(
            "realaa",
            "realaa-point",
            [
                {
                    "n": 7,
                    "t": 2,
                    "spread": 16.0,
                    "epsilon": 1.0,
                    "adversary": "even-burn",
                    "seed": 0,
                }
            ],
            jobs=1,
            no_cache=True,
        )
        (row,) = report.rows
        assert row["ok"] is True
        assert row["budget"] <= 3 * (2 + 1)
