"""Meta-tests for the promoted scenario generators.

The flywheel's exactly-once accounting rests on two properties of
:mod:`repro.analysis.strategies`: every generated point is a *valid*,
JSON-round-trippable ScenarioSpec inside the documented bounds, and the
stream is a pure function of its seed — identical across processes.
Both are pinned here, the second across a real process boundary.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.analysis.spec import ScenarioSpec
from repro.analysis.strategies import (
    FLYWHEEL_MAX_N,
    FLYWHEEL_MAX_T,
    REFERENCE_ONLY_SPEC_ADVERSARIES,
    spec_stream,
    stream_digest,
)

STREAM_SEED = 1234
STREAM_COUNT = 300


@pytest.fixture(scope="module")
def stream():
    return list(spec_stream(STREAM_SEED, STREAM_COUNT))


class TestPointValidity:
    def test_specs_construct_and_round_trip_through_json(self, stream):
        for spec in stream:
            # to_dict -> json -> from_dict must reproduce the spec
            # exactly (ScenarioSpec.__post_init__ re-validates on load).
            payload = json.loads(json.dumps(spec.to_dict()))
            assert ScenarioSpec.from_dict(payload) == spec

    def test_specs_stay_inside_the_flywheel_regime(self, stream):
        for spec in stream:
            assert 0 <= spec.t <= FLYWHEEL_MAX_T
            assert 3 * spec.t + 2 <= spec.n <= max(FLYWHEEL_MAX_N, 3 * spec.t + 2)
            assert spec.backend == "reference"
            assert 0 <= spec.seed < 2**31
            if spec.protocol == "real-aa":
                assert spec.tree is None
            else:
                assert spec.tree

    def test_corrupt_sets_respect_the_budget(self, stream):
        for spec in stream:
            assert len(spec.corrupt) <= spec.t
            assert all(0 <= pid < spec.n for pid in spec.corrupt)

    def test_stream_covers_the_interesting_axes(self, stream):
        """300 points must hit every protocol, both trace levels, and
        both the batch-replayable and reference-only adversary halves —
        a collapsed generator would silently gut the campaign's value."""
        protocols = {spec.protocol for spec in stream}
        assert protocols == {"real-aa", "path-aa", "tree-aa"}
        assert {spec.trace_level for spec in stream} == {"full", "aggregate"}
        kinds = {spec.adversary.split(":")[0] for spec in stream}
        assert kinds & {k.split(":")[0] for k in REFERENCE_ONLY_SPEC_ADVERSARIES}
        assert kinds & {"none", "silent", "crash", "chaos"}
        assert any(spec.record for spec in stream)
        assert any(not spec.record for spec in stream)


class TestDeterminism:
    def test_same_seed_same_stream(self, stream):
        again = list(spec_stream(STREAM_SEED, STREAM_COUNT))
        assert again == stream

    def test_prefix_stability(self, stream):
        """Point i is independent of how many points are drawn after it —
        the property that lets a resume re-generate only what it needs."""
        prefix = list(spec_stream(STREAM_SEED, 50))
        assert prefix == stream[:50]

    def test_different_seeds_differ(self, stream):
        assert list(spec_stream(STREAM_SEED + 1, STREAM_COUNT)) != stream

    def test_digest_matches_across_a_process_boundary(self):
        """The digest computed by a *fresh interpreter* must equal ours:
        no ambient state (hash randomization, import order, platform
        dict ordering) may leak into the stream."""
        local = stream_digest(STREAM_SEED, 64)
        script = (
            "from repro.analysis.strategies import stream_digest;"
            f"print(stream_digest({STREAM_SEED}, 64))"
        )
        import os

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        ).stdout.strip()
        assert remote == local
