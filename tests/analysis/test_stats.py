"""Tests for the multi-seed aggregation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import Summary, aggregate, success_rate, summarize


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0 and summary.maximum == 3.0

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str_is_compact(self):
        text = str(summarize([1.0, 2.0]))
        assert "±" in text and "[" in text

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30))
    def test_bounds_property(self, values):
        summary = summarize(values)
        assert summary.minimum <= summary.mean <= summary.maximum


class TestAggregate:
    def test_runs_all_seeds(self):
        seen = []

        def experiment(seed):
            seen.append(seed)
            return {"metric": seed * 2.0, "ok": True}

        result = aggregate(experiment, seeds=[1, 2, 3])
        assert seen == [1, 2, 3]
        assert result["metric"].mean == pytest.approx(4.0)
        assert result["ok"].mean == 1.0  # booleans become success rates

    def test_mismatched_keys_rejected(self):
        def experiment(seed):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ValueError, match="metrics"):
            aggregate(experiment, seeds=[0, 1])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            aggregate(lambda s: {}, seeds=[])

    def test_with_a_real_protocol(self):
        from repro.adversary import ChaosAdversary
        from repro.core import run_real_aa

        def experiment(seed):
            outcome = run_real_aa(
                [0.0, 8.0, 4.0, 2.0, 6.0, 0.0, 8.0],
                t=2,
                epsilon=0.5,
                known_range=8.0,
                adversary=ChaosAdversary(seed=seed),
            )
            return {
                "achieved": outcome.achieved_aa,
                "spread": outcome.output_spread,
                "rounds": outcome.rounds,
            }

        result = aggregate(experiment, seeds=range(5))
        assert result["achieved"].mean == 1.0
        assert result["spread"].maximum <= 0.5


class TestSuccessRate:
    def test_rates(self):
        assert success_rate([True, True, False, False]) == 0.5
        assert success_rate([True]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            success_rate([])
