"""Tests for the AA property checkers and convergence statistics."""

import pytest

from repro.adversary import SilentAdversary
from repro.analysis import (
    convergence_factors,
    honest_value_ranges,
    overall_factor,
    real_agreement,
    real_validity,
    tree_agreement,
    tree_output_diameter,
    tree_validity,
)
from repro.net import run_protocol
from repro.protocols import RealAAParty
from repro.trees import figure_tree, path_tree


class TestRealCheckers:
    def test_validity(self):
        assert real_validity([0.0, 10.0], [5.0, 0.0, 10.0])
        assert not real_validity([0.0, 10.0], [10.5])

    def test_agreement(self):
        assert real_agreement([1.0, 1.4], 0.5)
        assert not real_agreement([1.0, 1.6], 0.5)


class TestTreeCheckers:
    def test_validity_on_figure_tree(self):
        tree = figure_tree()
        assert tree_validity(tree, ["v3", "v6", "v5"], ["v2", "v3"])
        assert not tree_validity(tree, ["v3", "v6", "v5"], ["v4"])

    def test_output_diameter(self):
        tree = figure_tree()
        assert tree_output_diameter(tree, ["v6", "v6"]) == 0
        assert tree_output_diameter(tree, ["v6", "v3"]) == 1
        assert tree_output_diameter(tree, ["v6", "v5"]) == 3

    def test_agreement(self):
        tree = figure_tree()
        assert tree_agreement(tree, ["v3", "v3", "v6"])
        assert not tree_agreement(tree, ["v6", "v7"])  # siblings: distance 2


class TestConvergenceSeries:
    def _run(self):
        n, t = 7, 2
        inputs = [0.0, 10.0, 5.0, 0.0, 10.0, 0.0, 0.0]
        return run_protocol(
            n,
            t,
            lambda pid: RealAAParty(pid, n, t, inputs[pid], iterations=3),
            adversary=SilentAdversary(),
        )

    def test_ranges_start_with_input_spread(self):
        ranges = honest_value_ranges(self._run())
        assert ranges[0] == 10.0
        assert len(ranges) == 4  # inputs + 3 iterations

    def test_factors(self):
        assert convergence_factors([8.0, 4.0, 1.0]) == [0.5, 0.25]
        assert convergence_factors([8.0, 0.0, 0.0]) == [0.0, 0.0]

    def test_overall_factor(self):
        assert overall_factor([8.0, 1.0]) == pytest.approx(0.125)
        assert overall_factor([0.0, 0.0]) == 0.0
        assert overall_factor([]) == 0.0

    def test_missing_history_rejected(self):
        from repro.net.protocol import SilentParty
        from repro.net.network import ExecutionResult, ExecutionTrace

        result = ExecutionResult(
            outputs={0: None},
            honest={0},
            corrupted=set(),
            trace=ExecutionTrace(),
            parties={0: SilentParty(0, 1, 0)},
        )
        with pytest.raises(ValueError):
            honest_value_ranges(result)


class TestTables:
    def test_format_table_alignment(self):
        from repro.analysis import format_table

        text = format_table(
            ["name", "value"], [["alpha", 1.0], ["b", 123456.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_cell_floats(self):
        from repro.analysis.tables import format_cell

        assert format_cell(0.0) == "0"
        assert "e" in format_cell(1.23e-9)
        assert format_cell(True) == "yes"
        assert format_cell(3) == "3"

    def test_row_width_mismatch_rejected(self):
        from repro.analysis import format_table

        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])


class TestSweepHelpers:
    def test_spread_inputs_include_diameter_endpoints(self):
        import random

        from repro.analysis import spread_inputs
        from repro.trees import diameter_path

        tree = path_tree(9)
        longest = diameter_path(tree)
        inputs = spread_inputs(tree, 7, random.Random(0))
        assert longest.start in inputs
        assert longest.end in inputs
        assert len(inputs) == 7

    def test_spread_inputs_n1_returns_one_input(self):
        import random

        from repro.analysis import spread_inputs
        from repro.trees import diameter_path

        tree = path_tree(9)
        inputs = spread_inputs(tree, 1, random.Random(0))
        assert len(inputs) == 1
        longest = diameter_path(tree)
        assert inputs[0] in (longest.start, longest.end)

    def test_spread_inputs_n2_returns_both_endpoints(self):
        import random

        from repro.analysis import spread_inputs
        from repro.trees import diameter_path

        tree = path_tree(9)
        inputs = spread_inputs(tree, 2, random.Random(0))
        longest = diameter_path(tree)
        assert sorted(inputs) == sorted([longest.start, longest.end])

    def test_spread_inputs_n0_returns_empty(self):
        import random

        from repro.analysis import spread_inputs

        assert spread_inputs(path_tree(9), 0, random.Random(0)) == []

    def test_spread_inputs_negative_n_rejected(self):
        import random

        import pytest

        from repro.analysis import spread_inputs

        with pytest.raises(ValueError):
            spread_inputs(path_tree(9), -1, random.Random(0))

    def test_run_tree_point_smoke(self):
        from repro.analysis import run_tree_point

        point = run_tree_point("path", path_tree(9), n=4, t=1)
        assert point.tree_ok and point.baseline_ok
        assert point.tree_rounds > 0 and point.baseline_rounds > 0

    def test_measured_realaa_rounds_smoke(self):
        from repro.analysis import measured_realaa_rounds

        budget, measured, ok = measured_realaa_rounds(64.0, 1.0, 7, 2)
        assert ok
        assert budget > 0
        assert measured is None or measured <= budget
