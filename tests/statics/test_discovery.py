"""Gate-coverage meta-tests: every package is seen by every gate.

The resilience lab added a whole new package (``repro.resilience``); a
package the gates silently skip is a package whose regressions never
fail CI.  These tests pin the coverage contract:

* :func:`repro.statics.discovery.repro_packages` enumerates the
  subpackages that actually exist on disk;
* the protolint engine's default walk visits files from *every* one of
  them (so PL002's assert ban and PL003/PL004 apply to the resilience
  lab too);
* mypy's ``packages = ["repro"]`` configuration covers the whole tree
  by construction — asserted here against the pyproject text so a
  future narrowing is a visible diff;
* PL001 determinism stays scoped to the protocol layer: the seeded
  ``random.Random`` draws in ``repro.resilience`` (an analysis-layer
  package) are sanctioned, while the same code in ``repro.net`` fires.
"""

import os
import textwrap

from repro.statics import lint_paths, lint_source
from repro.statics.discovery import (
    module_name,
    repro_packages,
    source_root,
)
from repro.statics.rules.determinism import PROTOCOL_PACKAGES

REPO_ROOT = os.path.dirname(source_root())

AMBIENT_RANDOMNESS = textwrap.dedent(
    """
    import random

    def jitter():
        return random.random()
    """
)

SEEDED_RANDOMNESS = textwrap.dedent(
    """
    import random

    def make_rng(seed):
        return random.Random(seed)
    """
)


class TestPackageEnumeration:
    def test_resilience_is_enumerated(self):
        assert "resilience" in repro_packages()

    def test_enumeration_matches_disk(self):
        src = os.path.join(source_root(), "repro")
        on_disk = sorted(
            entry
            for entry in os.listdir(src)
            if os.path.isdir(os.path.join(src, entry))
            and os.path.isfile(os.path.join(src, entry, "__init__.py"))
        )
        assert repro_packages() == on_disk

    def test_protocol_scope_is_a_strict_subset(self):
        # PL001's protocol layer must name real packages, and must NOT
        # swallow the analysis layers (else seeded campaign randomness
        # would be banned).
        packages = set(repro_packages())
        assert set(PROTOCOL_PACKAGES) <= packages
        assert "resilience" not in PROTOCOL_PACKAGES
        assert "analysis" not in PROTOCOL_PACKAGES


class TestLinterWalksEveryPackage:
    def test_default_lint_visits_every_package(self):
        src = source_root()
        seen_packages = set()
        result = lint_paths(src_root=src)
        # Re-derive the walked modules the same way the engine does: the
        # checked-file count must account for every package's files.
        from repro.statics.discovery import iter_source_files

        total = 0
        for path in iter_source_files(os.path.join(src, "repro")):
            total += 1
            parts = module_name(path, src).split(".")
            if len(parts) > 1:
                seen_packages.add(parts[1])
        assert result.checked_files == total
        assert set(repro_packages()) <= seen_packages

    def test_resilience_files_reach_the_rules(self):
        src = source_root()
        resilience_dir = os.path.join(src, "repro", "resilience")
        result = lint_paths([resilience_dir], src_root=src)
        expected = len(
            [name for name in os.listdir(resilience_dir) if name.endswith(".py")]
        )
        assert result.checked_files == expected >= 6


class TestDeterminismScope:
    def test_ambient_randomness_fires_in_protocol_layer(self):
        findings = lint_source(
            AMBIENT_RANDOMNESS,
            module="repro.net.snippet",
            rule_ids=["PL001"],
        )
        assert findings and all(f.rule == "PL001" for f in findings)

    def test_ambient_randomness_allowed_in_resilience(self):
        # The campaign engine draws scenario parameters from a seeded
        # generator; the analysis layer is outside PL001's scope.
        findings = lint_source(
            AMBIENT_RANDOMNESS,
            module="repro.resilience.snippet",
            rule_ids=["PL001"],
        )
        assert findings == []

    def test_seeded_random_allowed_everywhere(self):
        for module in ("repro.net.snippet", "repro.resilience.snippet"):
            findings = lint_source(
                SEEDED_RANDOMNESS, module=module, rule_ids=["PL001"]
            )
            assert findings == [], module


class TestMypyCoverageConfig:
    def test_mypy_targets_the_whole_package(self):
        with open(os.path.join(REPO_ROOT, "pyproject.toml")) as handle:
            text = handle.read()
        assert 'packages = ["repro"]' in text
