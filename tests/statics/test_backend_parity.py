"""PL201–PL202: adversary batch parity and the docs support matrix."""

import textwrap

from repro.statics import (
    LintConfig,
    ProgramModel,
    lint_contexts,
    lint_paths,
    parse_module,
)
from repro.statics.rules.parity import parse_support_table, support_matrix

BASE = """
    from abc import ABC, abstractmethod

    class UnsupportedBackendError(RuntimeError):
        pass

    class Adversary(ABC):
        @abstractmethod
        def byzantine_messages(self, rnd):
            ...

        def batch_spec(self):
            raise UnsupportedBackendError(type(self).__name__)
    """


def contexts_for(attack_source, base_source=BASE):
    """Parse the fixture base module plus one attack module."""
    specs = [
        ("repro.adversary.base", base_source),
        ("repro.adversary.attack", attack_source),
    ]
    return [
        parse_module(
            "<memory>",
            module.rsplit(".", 1)[1] + ".py",
            module,
            source=textwrap.dedent(body),
        )
        for module, body in specs
    ]


def parity_lint(attack_source, base_source=BASE, rule_ids=("PL201",)):
    return lint_contexts(
        contexts_for(attack_source, base_source), rule_ids=list(rule_ids)
    ).findings


class TestBatchParity:
    def test_undeclared_concrete_adversary_is_flagged(self):
        findings = parity_lint(
            """
            from repro.adversary.base import Adversary

            class NovelAttack(Adversary):
                def byzantine_messages(self, rnd):
                    return []
            """
        )
        assert len(findings) == 1
        assert findings[0].rule == "PL201"
        assert "`NovelAttack`" in findings[0].message
        assert "neither overrides" in findings[0].message

    def test_annotated_unsupported_adversary_is_clean(self):
        findings = parity_lint(
            """
            from repro.adversary.base import Adversary

            class NovelAttack(Adversary):
                # statics: batch-unsupported(needs per-party replay)
                def byzantine_messages(self, rnd):
                    return []
            """
        )
        assert findings == []

    def test_supported_adversary_is_clean(self):
        findings = parity_lint(
            """
            from repro.adversary.base import Adversary

            class SimpleAttack(Adversary):
                def byzantine_messages(self, rnd):
                    return []

                def batch_spec(self):
                    return ("silent",)
            """
        )
        assert findings == []

    def test_contradictory_declaration_is_flagged(self):
        findings = parity_lint(
            """
            from repro.adversary.base import Adversary

            class SimpleAttack(Adversary):
                # statics: batch-unsupported(left over from a refactor)
                def byzantine_messages(self, rnd):
                    return []

                def batch_spec(self):
                    return ("silent",)
            """
        )
        assert len(findings) == 1
        assert "declared batch-unsupported but its batch_spec() returns" in (
            findings[0].message
        )

    def test_empty_reason_is_flagged(self):
        findings = parity_lint(
            """
            from repro.adversary.base import Adversary

            class NovelAttack(Adversary):
                # statics: batch-unsupported()
                def byzantine_messages(self, rnd):
                    return []
            """
        )
        assert any("without a reason" in f.message for f in findings)

    def test_declaration_without_a_raise_is_flagged(self):
        base = """
            from abc import ABC, abstractmethod

            class Adversary(ABC):
                @abstractmethod
                def byzantine_messages(self, rnd):
                    ...

                def batch_spec(self):
                    return None
            """
        findings = parity_lint(
            """
            from repro.adversary.base import Adversary

            class NovelAttack(Adversary):
                # statics: batch-unsupported(no batch form)
                def byzantine_messages(self, rnd):
                    return []
            """,
            base_source=base,
        )
        assert len(findings) == 1
        assert "never raises UnsupportedBackendError" in findings[0].message

    def test_super_delegating_guard_counts_as_raising(self):
        findings = parity_lint(
            """
            from repro.adversary.base import Adversary

            class GuardedAttack(Adversary):
                # statics: batch-unsupported(subclass side of the guard)
                def byzantine_messages(self, rnd):
                    return []

                def batch_spec(self):
                    return super().batch_spec()
            """
        )
        assert findings == []

    def test_abstract_intermediates_are_skipped(self):
        findings = parity_lint(
            """
            from abc import abstractmethod
            from repro.adversary.base import Adversary

            class Skeleton(Adversary):
                @abstractmethod
                def byzantine_messages(self, rnd):
                    ...
            """
        )
        assert findings == []

    def test_suppression_comment_silences_pl201(self):
        result = lint_contexts(
            contexts_for(
                """
                from repro.adversary.base import Adversary

                class NovelAttack(Adversary):  # protolint: disable=PL201
                    def byzantine_messages(self, rnd):
                        return []
                """
            ),
            rule_ids=["PL201"],
        )
        assert result.findings == []
        assert result.suppressed == 1


class TestSupportMatrix:
    def test_fixture_matrix_reports_both_sides(self):
        model = ProgramModel(
            contexts_for(
                """
                from repro.adversary.base import Adversary

                class SimpleAttack(Adversary):
                    def byzantine_messages(self, rnd):
                        return []

                    def batch_spec(self):
                        return ("silent",)

                class NovelAttack(Adversary):
                    # statics: batch-unsupported(needs per-party replay)
                    def byzantine_messages(self, rnd):
                        return []
                """
            )
        )
        matrix = support_matrix(model)
        assert matrix["SimpleAttack"] == (True, None)
        assert matrix["NovelAttack"] == (False, "needs per-party replay")

    def test_real_tree_declarations(self):
        # Pin the declared support set the batch engine actually honours:
        # the matrix is the contract docs/API.md and PL202 enforce.
        from repro.statics.discovery import (
            iter_source_files,
            module_name,
            source_root,
        )

        src = source_root()
        contexts = [
            parse_module(path, path, module_name(path, src))
            for path in iter_source_files(src)
        ]
        matrix = support_matrix(ProgramModel(contexts))
        assert matrix["NoAdversary"][0] is True
        assert matrix["ChaosAdversary"][0] is True
        assert matrix["PuppetDrivingAdversary"][0] is False
        assert matrix["PuppetDrivingAdversary"][1]  # carries a reason
        assert matrix["DSEquivocatorAdversary"][0] is False
        supported = {name for name, (ok, _) in matrix.items() if ok}
        assert supported == {
            "NoAdversary",
            "SilentAdversary",
            "PassiveAdversary",
            "CrashAdversary",
            "ChaosAdversary",
            "BurnScheduleAdversary",
            "SplitBroadcastAdversary",
        }


class TestParseSupportTable:
    DOC = [
        "# API",
        "",
        "<!-- statics: adversary-batch-matrix -->",
        "",
        "| Adversary | Batch backend |",
        "|---|---|",
        "| `NoAdversary` | ✅ class-collapse |",
        "| `EchoAdversary` | ❌ echoing needs inboxes |",
        "",
        "More prose.",
    ]

    def test_rows_and_marker_are_parsed(self):
        marker, rows = parse_support_table(self.DOC)
        assert marker == 3
        assert rows == {"NoAdversary": (True, 7), "EchoAdversary": (False, 8)}

    def test_table_ends_at_first_non_row(self):
        doc = self.DOC + ["| `LateRow` | ✅ after the break |"]
        _, rows = parse_support_table(doc)
        assert "LateRow" not in rows

    def test_no_marker_means_no_rows(self):
        marker, rows = parse_support_table(["# API", "| `X` | ✅ |"])
        assert marker is None
        assert rows == {}


class TestDocsParity:
    ATTACKS = """
        from repro.adversary.base import Adversary

        class SimpleAttack(Adversary):
            def byzantine_messages(self, rnd):
                return []

            def batch_spec(self):
                return ("silent",)

        class NovelAttack(Adversary):
            # statics: batch-unsupported(needs per-party replay)
            def byzantine_messages(self, rnd):
                return []
        """

    def run_pl202(self, tmp_path, doc_lines, full_tree=False):
        doc = tmp_path / "API.md"
        doc.write_text("\n".join(doc_lines) + "\n", encoding="utf-8")
        config = LintConfig(
            declared_tags={},
            handler_exempt_tags=set(),
            api_doc_path=str(doc),
            full_tree=full_tree,
        )
        return lint_contexts(
            contexts_for(self.ATTACKS), rule_ids=["PL202"], config=config
        ).findings

    def test_verdict_mismatch_is_always_flagged(self, tmp_path):
        findings = self.run_pl202(
            tmp_path,
            [
                "<!-- statics: adversary-batch-matrix -->",
                "| `SimpleAttack` | ❌ wrong verdict |",
                "| `NovelAttack` | ❌ needs per-party replay |",
            ],
        )
        assert len(findings) == 1
        assert findings[0].rule == "PL202"
        assert "`SimpleAttack`" in findings[0].message
        assert "declarations say supported" in findings[0].message

    def test_matching_matrix_is_clean(self, tmp_path):
        findings = self.run_pl202(
            tmp_path,
            [
                "<!-- statics: adversary-batch-matrix -->",
                "| `SimpleAttack` | ✅ silent batch kind |",
                "| `NovelAttack` | ❌ needs per-party replay |",
            ],
            full_tree=True,
        )
        assert findings == []

    def test_missing_row_only_fires_on_full_tree(self, tmp_path):
        doc = [
            "<!-- statics: adversary-batch-matrix -->",
            "| `SimpleAttack` | ✅ silent batch kind |",
        ]
        assert self.run_pl202(tmp_path, doc, full_tree=False) == []
        findings = self.run_pl202(tmp_path, doc, full_tree=True)
        assert len(findings) == 1
        assert "`NovelAttack` is missing" in findings[0].message

    def test_stale_row_only_fires_on_full_tree(self, tmp_path):
        doc = [
            "<!-- statics: adversary-batch-matrix -->",
            "| `SimpleAttack` | ✅ silent batch kind |",
            "| `NovelAttack` | ❌ needs per-party replay |",
            "| `DeletedAttack` | ✅ removed last release |",
        ]
        assert self.run_pl202(tmp_path, doc, full_tree=False) == []
        findings = self.run_pl202(tmp_path, doc, full_tree=True)
        assert len(findings) == 1
        assert "matches no concrete adversary" in findings[0].message

    def test_missing_marker_only_fires_on_full_tree(self, tmp_path):
        doc = ["# API", "no matrix here"]
        assert self.run_pl202(tmp_path, doc, full_tree=False) == []
        findings = self.run_pl202(tmp_path, doc, full_tree=True)
        assert len(findings) == 1
        assert "no `<!-- statics: adversary-batch-matrix -->`" in (
            findings[0].message
        )

    def test_absent_doc_means_no_findings(self, tmp_path):
        config = LintConfig(
            declared_tags={},
            handler_exempt_tags=set(),
            api_doc_path=str(tmp_path / "missing.md"),
            full_tree=True,
        )
        findings = lint_contexts(
            contexts_for(self.ATTACKS), rule_ids=["PL202"], config=config
        ).findings
        assert findings == []

    def test_repo_matrix_matches_the_tree(self):
        # The committed docs/API.md matrix must agree with the declared
        # support set — the full-tree lint run enforces exactly this.
        result = lint_paths(rule_ids=["PL201", "PL202"])
        assert result.findings == []
