"""The shipped tree satisfies its own gates.

These are the meta-tests of the static-analysis tentpole: the linter
holds ``src/repro`` clean against the committed baseline, each rule
still catches a freshly injected violation (and only that rule fires),
and the packages under the strict mypy gate carry complete annotations
even when mypy itself is not installed locally.
"""

import ast
import io
import os
import shutil
import subprocess
import sys
import textwrap

import pytest

from repro.statics import LintConfig, lint_source
from repro.statics.cli import EXIT_CLEAN, default_baseline_path, run
from repro.statics.discovery import iter_source_files, source_root

REPO_ROOT = os.path.dirname(source_root())

#: One representative violation per rule; each must be caught by exactly
#: the rule it violates when the full rule set runs.
INJECTED = {
    "PL001": """
        import random

        def pick():
            return random.random()
        """,
    "PL002": """
        def check(x):
            assert x >= 0
        """,
    "PL003": """
        def send(n):
            return {r: ("bogustag", 1) for r in range(n)}
        """,
    "PL004": """
        class Meddler:
            def on_round(self, round_index, honest, byz, parties, corrupted):
                parties[0].value = 1.0
        """,
}


class TestShippedTreeIsClean:
    def test_linter_clean_against_committed_baseline(self):
        out, err = io.StringIO(), io.StringIO()
        code = run([], prog="protolint", stdout=out, stderr=err)
        assert code == EXIT_CLEAN, out.getvalue() + err.getvalue()

    def test_committed_baseline_is_justified(self):
        from repro.statics import load_baseline

        allowance = load_baseline(default_baseline_path())
        # The ratchet only goes down: the debt is a single deliberate
        # exception (the junk-injection adversary's undeclared tag).
        assert sum(allowance.values()) <= 1

    @pytest.mark.parametrize("rule", sorted(INJECTED))
    def test_injected_violation_caught_by_exactly_that_rule(self, rule):
        config = LintConfig(declared_tags={"val": "v"}, handler_exempt_tags=set())
        findings = lint_source(
            textwrap.dedent(INJECTED[rule]),
            module="repro.protocols.snippet",
            config=config,
        )
        assert findings, f"injected {rule} violation went undetected"
        assert {f.rule for f in findings} == {rule}


def _function_signature_gaps(tree):
    """Yield (name, lineno) for defs with missing annotations."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = list(node.args.posonlyargs) + list(node.args.args)
        if args and args[0].arg in ("self", "cls"):
            args = args[1:]
        args += list(node.args.kwonlyargs)
        for vararg in (node.args.vararg, node.args.kwarg):
            if vararg is not None:
                args.append(vararg)
        if any(arg.annotation is None for arg in args):
            yield node.name, node.lineno
        elif node.returns is None:
            yield node.name, node.lineno


class TestStrictTypingGate:
    STRICT_PACKAGES = ("core", "net", "protocols")

    def test_strict_packages_are_fully_annotated(self):
        # Mirrors the disallow_untyped_defs / disallow_incomplete_defs
        # overrides in pyproject.toml, so the gate holds even where the
        # real mypy binary is unavailable (CI installs it; see
        # .github/workflows/ci.yml).
        gaps = []
        for package in self.STRICT_PACKAGES:
            root = os.path.join(source_root(), "repro", package)
            for path in iter_source_files(root):
                with open(path, encoding="utf-8") as handle:
                    tree = ast.parse(handle.read(), filename=path)
                for name, lineno in _function_signature_gaps(tree):
                    gaps.append(f"{path}:{lineno}: {name}")
        assert not gaps, "unannotated defs in strict packages:\n" + "\n".join(gaps)

    @pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
    def test_mypy_passes(self):
        proc = subprocess.run(
            [shutil.which("mypy"), "--no-error-summary"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
    def test_ruff_passes(self):
        proc = subprocess.run(
            [shutil.which("ruff"), "check", "."],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_protolint_script_runs_clean(self):
        # The exact invocation CI uses, end to end through the script shim.
        proc = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "tools", "protolint.py")],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
