"""PL004 — observer purity (on_round hooks read, never mutate)."""

import textwrap

from repro.statics import lint_source


def pl004(source: str, module: str = "repro.observability.snippet"):
    findings = lint_source(textwrap.dedent(source), module=module, rule_ids=["PL004"])
    assert all(f.rule == "PL004" for f in findings)
    return findings


class TestMutationDetection:
    def test_attribute_write_through_parameter_flagged(self):
        findings = pl004(
            """
            class Meddler:
                def on_round(self, round_index, honest, byz, parties, corrupted):
                    parties[0].value = 42.0
            """
        )
        assert len(findings) == 1
        assert "writes to" in findings[0].message

    def test_mutator_call_on_parameter_flagged(self):
        findings = pl004(
            """
            class Meddler:
                def on_round(self, round_index, honest, byz, parties, corrupted):
                    parties[0].bad.add(3)
            """
        )
        assert len(findings) == 1
        assert ".add(" in findings[0].message

    def test_driving_the_protocol_flagged(self):
        findings = pl004(
            """
            class Meddler:
                def on_round(self, round_index, honest, byz, parties, corrupted):
                    parties[0].receive_round(round_index, {})
            """
        )
        assert len(findings) == 1
        assert "drives the protocol" in findings[0].message

    def test_delete_flagged(self):
        findings = pl004(
            """
            class Meddler:
                def on_round(self, round_index, honest, byz, parties, corrupted):
                    del parties[0]
            """
        )
        assert len(findings) == 1
        assert "deletes" in findings[0].message

    def test_helper_methods_also_checked(self):
        # Mutations hidden behind a helper of the same observer class still
        # touch simulator state.
        findings = pl004(
            """
            class Meddler:
                def on_round(self, round_index, honest, byz, parties, corrupted):
                    self._tweak(parties)

                def _tweak(self, parties):
                    parties[0].value = 0.0
            """
        )
        assert len(findings) == 1


class TestPureObservers:
    def test_reading_and_recording_clean(self):
        assert not pl004(
            """
            class Recorder:
                def __init__(self):
                    self.rows = []

                def on_round(self, round_index, honest, byz, parties, corrupted):
                    values = [parties[p].value for p in sorted(honest)]
                    self.rows.append((round_index, values))
            """
        )

    def test_self_mutation_is_fine(self):
        assert not pl004(
            """
            class Counter:
                def __init__(self):
                    self.seen = set()

                def on_round(self, round_index, honest, byz, parties, corrupted):
                    self.seen.add(round_index)
            """
        )

    def test_local_rebind_is_fine(self):
        assert not pl004(
            """
            class Recorder:
                def on_round(self, round_index, honest, byz, parties, corrupted):
                    honest = sorted(honest)
                    return honest
            """
        )

    def test_classes_without_on_round_ignored(self):
        assert not pl004(
            """
            class NotAnObserver:
                def poke(self, parties):
                    parties[0].value = 1.0
            """
        )

    def test_suppression(self):
        assert not pl004(
            """
            class Meddler:
                def on_round(self, round_index, honest, byz, parties, corrupted):
                    parties[0].value = 42.0  # protolint: disable=PL004
            """
        )
