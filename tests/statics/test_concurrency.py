"""PL101–PL104: the concurrency-discipline rule family."""

import os
import textwrap

from repro.statics import (
    expand_rule_selectors,
    guarded_state_inventory,
    lint_contexts,
    lint_paths,
    lint_source,
    parse_module,
)
from repro.statics.discovery import source_root
from repro.statics.rules.concurrency import in_concurrency_scope


def service_lint(source, rule_ids, module="repro.service.fixture"):
    return lint_source(
        textwrap.dedent(source), module=module, rule_ids=rule_ids
    )


class TestScope:
    def test_service_and_parallel_are_in_scope(self):
        assert in_concurrency_scope("repro.service.jobs")
        assert in_concurrency_scope("repro.service")
        assert in_concurrency_scope("repro.analysis.parallel")

    def test_protocol_layers_are_not(self):
        assert not in_concurrency_scope("repro.core.treeaa")
        assert not in_concurrency_scope("repro.analysis.sweep")

    def test_out_of_scope_module_gets_no_pl1_findings(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import threading

                def fire():
                    threading.Thread(target=print).start()
                """
            ),
            module="repro.core.snippet",
            rule_ids=["PL104"],
        )
        assert findings == []


class TestGuardedState:
    RACY = """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self.jobs = {}  # statics: guarded-by(_lock)

            def get(self, job_id):
                return self.jobs.get(job_id)
        """

    def test_unguarded_access_is_flagged(self):
        findings = service_lint(self.RACY, ["PL101"])
        assert len(findings) == 1
        assert findings[0].rule == "PL101"
        assert "guarded attribute `jobs`" in findings[0].message

    def test_access_under_lock_is_clean(self):
        fixed = self.RACY.replace(
            "return self.jobs.get(job_id)",
            "with self._lock:\n"
            "                    return self.jobs.get(job_id)",
        )
        assert service_lint(fixed, ["PL101"]) == []

    def test_holds_annotation_discharges_the_check(self):
        fixed = self.RACY.replace(
            "    def get(self, job_id):",
            "    def get(self, job_id):  # statics: holds(_lock)",
        )
        assert service_lint(fixed, ["PL101"]) == []

    def test_init_body_is_construction_exempt(self):
        source = """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.jobs = {}  # statics: guarded-by(_lock)
                    self.jobs["seed"] = None
            """
        assert service_lint(source, ["PL101"]) == []

    def test_undeclared_shared_write_is_flagged(self):
        source = """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    self.counter = 1
            """
        findings = service_lint(source, ["PL101"])
        assert len(findings) == 1
        assert "`self.counter`" in findings[0].message
        assert "guarded-by" in findings[0].message

    def test_declared_write_in_concurrent_class_is_clean(self):
        source = """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        self.counter = 1  # statics: guarded-by(_lock)
            """
        assert service_lint(source, ["PL101"]) == []

    def test_non_concurrent_class_writes_freely(self):
        source = """
            class Plain:
                def poke(self):
                    self.counter = 1
            """
        assert service_lint(source, ["PL101"]) == []

    def test_malformed_annotation_is_flagged(self):
        source = """
            class Store:
                x = 1  # statics: guarded_by(_lock)
            """
        findings = service_lint(source, ["PL101"])
        assert len(findings) == 1
        assert "malformed" in findings[0].message

    def test_docstrings_mentioning_statics_are_not_annotations(self):
        source = '''
            def explain():
                """Document the `# statics: guarded-by(<lock>)` marker."""
                return None
            '''
        assert service_lint(source, ["PL101"]) == []

    def test_imported_module_attributes_are_exempt(self):
        # `urllib.error` is a module attribute that happens to collide
        # with a guarded attribute name; chains rooted at imports pass.
        sources = {
            "repro.service.jobs2": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.error = None  # statics: guarded-by(_lock)
                """,
            "repro.service.client2": """
                import urllib.error

                def classify(exc):
                    return isinstance(exc, urllib.error.HTTPError)
                """,
        }
        contexts = [
            parse_module(
                "<memory>",
                module.rsplit(".", 1)[1] + ".py",
                module,
                source=textwrap.dedent(body),
            )
            for module, body in sources.items()
        ]
        result = lint_contexts(contexts, rule_ids=["PL101"])
        assert result.findings == []

    def test_suppression_comment_silences_pl101(self):
        source = self.RACY.replace(
            "return self.jobs.get(job_id)",
            "return self.jobs.get(job_id)  # protolint: disable=PL101",
        )
        ctx = parse_module(
            "<memory>",
            "fixture.py",
            "repro.service.fixture",
            source=textwrap.dedent(source),
        )
        result = lint_contexts([ctx], rule_ids=["PL101"])
        assert result.findings == []
        assert result.suppressed == 1


class TestLockOrdering:
    def test_opposite_order_acquisition_is_a_cycle(self):
        source = """
            import threading

            job_lock = threading.Lock()
            log_lock = threading.Lock()

            def record():
                with job_lock:
                    with log_lock:
                        pass

            def report():
                with log_lock:
                    with job_lock:
                        pass
            """
        findings = service_lint(source, ["PL102"])
        assert len(findings) == 1
        assert "lock-ordering cycle" in findings[0].message
        assert "deadlock" in findings[0].message

    def test_consistent_order_is_clean(self):
        source = """
            import threading

            job_lock = threading.Lock()
            log_lock = threading.Lock()

            def record():
                with job_lock:
                    with log_lock:
                        pass

            def report():
                with job_lock:
                    with log_lock:
                        pass
            """
        assert service_lint(source, ["PL102"]) == []

    def test_cycle_is_found_across_modules(self):
        # The two halves of the deadlock live in different files; only
        # the cross-module may-acquire graph can see it.
        sources = {
            "repro.service.writer": """
                import threading

                job_lock = threading.Lock()
                log_lock = threading.Lock()

                def record():
                    with job_lock:
                        with log_lock:
                            pass
                """,
            "repro.service.reader": """
                from repro.service.writer import job_lock, log_lock

                def report():
                    with log_lock:
                        with job_lock:
                            pass
                """,
        }
        contexts = [
            parse_module(
                "<memory>",
                module.rsplit(".", 1)[1] + ".py",
                module,
                source=textwrap.dedent(body),
            )
            for module, body in sources.items()
        ]
        result = lint_contexts(contexts, rule_ids=["PL102"])
        assert len(result.findings) == 1
        assert "lock-ordering cycle" in result.findings[0].message

    def test_holds_annotation_contributes_an_edge(self):
        source = """
            import threading

            job_lock = threading.Lock()
            log_lock = threading.Lock()

            def record():  # statics: holds(job_lock)
                with log_lock:
                    pass

            def report():
                with log_lock:
                    with job_lock:
                        pass
            """
        findings = service_lint(source, ["PL102"])
        assert len(findings) == 1


class TestNoBlockingUnderLock:
    def test_thread_join_under_lock_is_flagged(self):
        source = """
            import threading

            lock = threading.Lock()

            def stop(worker):
                with lock:
                    worker.join()
            """
        findings = service_lint(source, ["PL103"])
        assert len(findings) == 1
        assert "blocking call `join()`" in findings[0].message

    def test_str_join_under_lock_is_not_blocking(self):
        source = """
            import threading

            lock = threading.Lock()

            def render(parts):
                with lock:
                    return ", ".join(parts)
            """
        assert service_lint(source, ["PL103"]) == []

    def test_blocking_outside_lock_is_fine(self):
        source = """
            def stop(worker):
                worker.join()
            """
        assert service_lint(source, ["PL103"]) == []

    def test_subprocess_under_lock_is_flagged(self):
        source = """
            import subprocess
            import threading

            lock = threading.Lock()

            def rebuild():
                with lock:
                    subprocess.run(["make"])
            """
        findings = service_lint(source, ["PL103"])
        assert len(findings) == 1
        assert "subprocess.run()" in findings[0].message

    def test_holds_method_counts_as_under_lock(self):
        source = """
            def drain(queue):  # statics: holds(_lock)
                queue.wait()
            """
        findings = service_lint(source, ["PL103"])
        assert len(findings) == 1
        assert "wait()" in findings[0].message


class TestThreadLifecycle:
    def test_fire_and_forget_thread_is_flagged(self):
        source = """
            import threading

            def launch(fn):
                threading.Thread(target=fn).start()
            """
        findings = service_lint(source, ["PL104"])
        assert len(findings) == 1
        assert "lifecycle" in findings[0].message

    def test_daemon_true_is_clean(self):
        source = """
            import threading

            def launch(fn):
                threading.Thread(target=fn, daemon=True).start()
            """
        assert service_lint(source, ["PL104"]) == []

    def test_stored_thread_without_shutdown_join_is_flagged(self):
        source = """
            import threading

            class Service:
                def start(self):
                    self._worker = threading.Thread(target=self.run)
                    self._worker.start()
            """
        findings = service_lint(source, ["PL104"])
        assert len(findings) == 1
        assert "`self._worker`" in findings[0].message

    def test_stored_thread_joined_on_shutdown_is_clean(self):
        source = """
            import threading

            class Service:
                def start(self):
                    self._worker = threading.Thread(target=self.run)
                    self._worker.start()

                def shutdown(self):
                    self._worker.join()
            """
        assert service_lint(source, ["PL104"]) == []

    def test_local_thread_joined_in_scope_is_clean(self):
        source = """
            import threading

            def run_once(fn):
                worker = threading.Thread(target=fn)
                worker.start()
                worker.join()
            """
        assert service_lint(source, ["PL104"]) == []

    def test_shutdown_endpoint_regression(self):
        # The exact pattern PL104 caught in http_api.py: a non-daemon
        # self-shutdown thread that nothing ever joins would keep a
        # dying interpreter alive.
        source = """
            import threading

            class Handler:
                def do_POST(self):
                    threading.Thread(target=self.service.shutdown).start()
            """
        findings = service_lint(source, ["PL104"])
        assert len(findings) == 1
        fixed = source.replace(
            "target=self.service.shutdown",
            "target=self.service.shutdown, daemon=True",
        )
        assert service_lint(fixed, ["PL104"]) == []


class TestRealTree:
    def test_service_package_is_pl1xx_clean(self):
        service_dir = os.path.join(source_root(), "repro", "service")
        result = lint_paths(
            paths=[service_dir], rule_ids=expand_rule_selectors(["PL1xx"])
        )
        assert result.findings == []

    def test_parallel_module_is_pl1xx_clean(self):
        parallel = os.path.join(source_root(), "repro", "analysis", "parallel.py")
        result = lint_paths(
            paths=[parallel], rule_ids=expand_rule_selectors(["PL1xx"])
        )
        assert result.findings == []

    def test_guarded_inventory_matches_the_service_contract(self):
        inventory = guarded_state_inventory()
        assert inventory[("repro.service.jobs.Job", "status")] == "_lock"
        assert inventory[("repro.service.jobs.Job", "results_path")] == "_lock"
        assert (
            inventory[("repro.service.jobs.Job", "cancel_requested")] == "_lock"
        )
        assert inventory[("repro.service.jobs.PointState", "row")] == "_lock"
        assert inventory[("repro.service.jobs.JobStore", "_jobs")] == "_lock"
        assert (
            inventory[("repro.service.journal.JobJournal", "_handle")]
            == "_journal_lock"
        )
        assert set(inventory.values()) == {"_lock", "_journal_lock"}
