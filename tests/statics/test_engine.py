"""Engine plumbing: suppression accounting, baselines, CLI contract."""

import io
import json
import os

import pytest

from repro.statics import (
    BaselineFormatError,
    Finding,
    PlaceholderJustificationError,
    apply_baseline,
    lint_contexts,
    lint_paths,
    load_baseline,
    parse_module,
    render_baseline,
)
from repro.statics.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, run
from repro.statics.discovery import (
    iter_source_files,
    list_source_files,
    module_name,
    source_root,
)


def run_cli(*argv):
    out, err = io.StringIO(), io.StringIO()
    code = run(list(argv), prog="protolint", stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestDiscovery:
    def test_iteration_is_sorted_and_skips_caches(self, tmp_path):
        (tmp_path / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-39.pyc").write_text("")
        hidden = tmp_path / ".hidden"
        hidden.mkdir()
        (hidden / "c.py").write_text("")
        files = list_source_files(str(tmp_path))
        assert [os.path.basename(f) for f in files] == ["a.py", "b.py"]
        assert files == sorted(files)

    def test_module_name(self):
        src = source_root()
        assert (
            module_name(os.path.join(src, "repro", "core", "api.py"), src)
            == "repro.core.api"
        )
        assert (
            module_name(os.path.join(src, "repro", "core", "__init__.py"), src)
            == "repro.core"
        )

    def test_repro_package_is_discovered(self):
        files = list(iter_source_files(os.path.join(source_root(), "repro")))
        assert any(f.endswith("messages.py") for f in files)
        assert all(f.endswith(".py") for f in files)


class TestSuppressionAccounting:
    def test_suppressed_findings_counted_not_reported(self):
        ctx = parse_module(
            "<memory>",
            "snippet.py",
            "repro.core.snippet",
            source="assert True  # protolint: disable=PL002\n",
        )
        result = lint_contexts([ctx], rule_ids=["PL002"])
        assert result.findings == []
        assert result.suppressed == 1
        assert result.checked_files == 1


class TestBaseline:
    def make_finding(self, **overrides):
        base = dict(
            path="src/repro/x.py", line=3, rule="PL002", message="bare assert"
        )
        base.update(overrides)
        return Finding(**base)

    def test_round_trip(self, tmp_path):
        findings = [self.make_finding(), self.make_finding(line=9)]
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(findings))
        document = json.loads(path.read_text())
        assert document["version"] == 1
        assert document["entries"][0]["count"] == 2
        assert document["entries"][0]["justification"] == "TODO: justify"
        # The un-edited writer stamp must NOT parse: a committed baseline
        # with placeholder justifications defeats the ratchet's contract
        # that every tolerated finding was consciously signed off.
        with pytest.raises(PlaceholderJustificationError) as excinfo:
            load_baseline(str(path))
        # The error carries the parsed allowance so --allow-todo-justify
        # can warn and continue without a second parse.
        fresh, absorbed = apply_baseline(findings, excinfo.value.allowance)
        assert fresh == []
        assert absorbed == 2

    def test_real_justification_parses(self, tmp_path):
        findings = [self.make_finding()]
        path = tmp_path / "baseline.json"
        document = json.loads(render_baseline(findings))
        document["entries"][0]["justification"] = "deliberate: test fixture"
        path.write_text(json.dumps(document))
        allowance = load_baseline(str(path))
        fresh, absorbed = apply_baseline(findings, allowance)
        assert fresh == []
        assert absorbed == 1

    def test_matching_is_line_independent(self):
        allowance = {("PL002", "src/repro/x.py", "bare assert"): 1}
        fresh, absorbed = apply_baseline(
            [self.make_finding(line=999)], allowance
        )
        assert fresh == []
        assert absorbed == 1

    def test_count_is_a_multiset_bound(self):
        allowance = {("PL002", "src/repro/x.py", "bare assert"): 1}
        findings = [self.make_finding(line=1), self.make_finding(line=2)]
        fresh, absorbed = apply_baseline(findings, allowance)
        assert len(fresh) == 1
        assert absorbed == 1

    @pytest.mark.parametrize(
        "document",
        [
            "[]",
            '{"version": 99, "entries": []}',
            '{"version": 1}',
            '{"version": 1, "entries": [{"rule": "PL002"}]}',
            '{"version": 1, "entries": [{"rule": "PL002", "path": "p",'
            ' "message": "m", "justification": "   "}]}',
            '{"version": 1, "entries": [{"rule": "PL002", "path": "p",'
            ' "message": "m", "justification": "ok", "count": 0}]}',
            "not json at all",
        ],
    )
    def test_malformed_baselines_rejected(self, tmp_path, document):
        path = tmp_path / "baseline.json"
        path.write_text(document)
        with pytest.raises(BaselineFormatError):
            load_baseline(str(path))


class TestLintPaths:
    def test_syntax_error_becomes_pl000(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = lint_paths(paths=[str(bad)])
        assert result.checked_files == 1
        assert len(result.findings) == 1
        assert result.findings[0].rule == "PL000"

    def test_whole_tree_default(self):
        result = lint_paths()
        assert result.checked_files > 50


class TestCliContract:
    def test_clean_tree_exits_zero(self):
        code, out, err = run_cli()
        assert code == EXIT_CLEAN
        assert "0 findings" in out

    def test_json_document_shape(self):
        code, out, err = run_cli("--json")
        assert code == EXIT_CLEAN
        document = json.loads(out)
        assert document["version"] == 1
        assert document["findings"] == []
        assert document["checked_files"] > 50
        assert document["baselined"] >= 1

    def test_no_baseline_reports_the_debt(self):
        code, out, err = run_cli("--no-baseline", "--json")
        document = json.loads(out)
        assert document["baselined"] == 0
        # The committed baseline tolerates exactly the deliberate
        # junk-injection tag; without it the finding resurfaces.
        assert code == EXIT_FINDINGS
        assert any(f["rule"] == "PL003" for f in document["findings"])

    def test_unknown_rule_is_usage_error(self):
        code, out, err = run_cli("--rules", "PL999")
        assert code == EXIT_USAGE
        assert "PL999" in err

    def test_missing_path_is_usage_error(self, tmp_path):
        code, out, err = run_cli(str(tmp_path / "nope.py"))
        assert code == EXIT_USAGE

    def test_malformed_baseline_is_usage_error(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{}")
        code, out, err = run_cli("--baseline", str(baseline))
        assert code == EXIT_USAGE

    def test_write_baseline_round_trip(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, out, err = run_cli(
            "--write-baseline", str(baseline), "--rules", "PL002"
        )
        assert code == EXIT_CLEAN
        assert baseline.exists()
        code, out, err = run_cli("--rules", "PL002", "--baseline", str(baseline))
        assert code == EXIT_CLEAN

    def _todo_stamped_baseline(self, tmp_path):
        """A baseline tolerating a fake finding, justification un-edited."""
        from repro.statics import render_baseline

        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            render_baseline(
                [Finding(path="src/repro/x.py", line=1, rule="PL002",
                         message="bare assert")]
            )
        )
        return baseline

    def test_todo_justification_fails_the_gate(self, tmp_path):
        baseline = self._todo_stamped_baseline(tmp_path)
        code, out, err = run_cli(
            "--rules", "PL002", "--baseline", str(baseline)
        )
        assert code == EXIT_USAGE
        assert "TODO: justify" in err
        assert "--allow-todo-justify" in err

    def test_allow_todo_justify_downgrades_to_warning(self, tmp_path):
        baseline = self._todo_stamped_baseline(tmp_path)
        code, out, err = run_cli(
            "--rules", "PL002", "--baseline", str(baseline),
            "--allow-todo-justify",
        )
        assert code == EXIT_CLEAN
        assert "warning" in err and "TODO: justify" in err

    def test_help_exits_zero(self):
        code, out, err = run_cli("--help")
        assert code == 0

    def test_single_file_lint(self, tmp_path):
        snippet = tmp_path / "loose.py"
        snippet.write_text("assert True\n")
        # Outside src/repro the module is not a repro.* module, so PL002
        # does not apply; the run is clean but counts the file.
        code, out, err = run_cli(str(snippet), "--json")
        assert code == EXIT_CLEAN
        assert json.loads(out)["checked_files"] == 1


class TestReproLintSubcommand:
    def test_shares_the_engine(self, capsys):
        from repro.cli import main

        assert main(["lint", "--json"]) == EXIT_CLEAN
        document = json.loads(capsys.readouterr().out)
        assert document["findings"] == []

    def test_usage_errors_propagate(self, capsys):
        from repro.cli import main

        assert main(["lint", "--rules", "PL999"]) == EXIT_USAGE

    def test_listed_in_top_level_help(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--help"])
        assert "lint" in capsys.readouterr().out


class TestFamilySelectors:
    def test_families_expand_to_their_rules(self):
        from repro.statics import expand_rule_selectors

        assert expand_rule_selectors(["PL1xx"]) == [
            "PL101", "PL102", "PL103", "PL104",
        ]
        assert expand_rule_selectors(["PL2xx"]) == ["PL201", "PL202"]

    def test_plain_ids_pass_through_and_mix(self):
        from repro.statics import expand_rule_selectors

        assert expand_rule_selectors(["PL002", "PL2xx"]) == [
            "PL002", "PL201", "PL202",
        ]

    def test_empty_family_raises(self):
        from repro.statics import expand_rule_selectors

        with pytest.raises(KeyError):
            expand_rule_selectors(["PL9xx"])

    def test_cli_family_selector_runs_clean(self):
        code, out, err = run_cli("--rules", "PL1xx,PL2xx", "--json")
        assert code == EXIT_CLEAN
        document = json.loads(out)
        assert document["rules"] == [
            "PL101", "PL102", "PL103", "PL104", "PL201", "PL202",
        ]
        assert document["findings"] == []

    def test_cli_unknown_family_is_usage_error(self):
        code, out, err = run_cli("--rules", "PL9xx")
        assert code == EXIT_USAGE
        assert "PL9xx" in err

    def test_json_rules_key_reports_the_run(self):
        code, out, err = run_cli("--rules", "PL101", "--json")
        assert code == EXIT_CLEAN
        assert json.loads(out)["rules"] == ["PL101"]


class TestChangedFlag:
    def make_repo(self, tmp_path):
        import subprocess

        repo = tmp_path / "repo"
        src = repo / "src" / "repro"
        src.mkdir(parents=True)
        env = dict(
            os.environ,
            GIT_AUTHOR_NAME="t", GIT_AUTHOR_EMAIL="t@t",
            GIT_COMMITTER_NAME="t", GIT_COMMITTER_EMAIL="t@t",
        )

        def git(*args):
            subprocess.run(
                ["git", *args], cwd=repo, env=env, check=True,
                capture_output=True,
            )

        (src / "old.py").write_text("x = 1\n")
        git("init", "-q", "-b", "main")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        return repo, src, git

    def test_changed_files_sees_modified_and_untracked(self, tmp_path):
        from repro.statics.cli import changed_files

        repo, src, git = self.make_repo(tmp_path)
        (src / "old.py").write_text("x = 2\n")
        (src / "new.py").write_text("y = 1\n")
        (repo / "README.md").write_text("outside src\n")
        found = changed_files("HEAD", str(repo / "src"))
        assert [os.path.basename(f) for f in found] == ["new.py", "old.py"]

    def test_changed_files_excludes_deletions(self, tmp_path):
        from repro.statics.cli import changed_files

        repo, src, git = self.make_repo(tmp_path)
        (src / "old.py").unlink()
        assert changed_files("HEAD", str(repo / "src")) == []

    def test_changed_files_bad_base_raises(self, tmp_path):
        from repro.statics.cli import changed_files

        repo, src, git = self.make_repo(tmp_path)
        with pytest.raises(RuntimeError):
            changed_files("no-such-ref", str(repo / "src"))

    def test_cli_changed_conflicts_with_paths(self):
        code, out, err = run_cli("--changed", "HEAD", "some/path.py")
        assert code == EXIT_USAGE
        assert "mutually exclusive" in err

    def test_cli_changed_runs_against_this_repo(self):
        # Whatever the working tree currently looks like, --changed must
        # terminate cleanly: either "nothing to lint" or a normal run.
        code, out, err = run_cli("--changed", "HEAD", "--json")
        assert code in (EXIT_CLEAN, EXIT_FINDINGS)
        document = json.loads(out)
        assert "findings" in document and "rules" in document


class TestRatchetRejectsUnjustifiedFamilies:
    def baseline_with(self, tmp_path, rule):
        entry = {
            "rule": rule,
            "path": "src/repro/service/jobs.py",
            "message": "placeholder finding",
            "count": 1,
            "justification": "TODO: justify",
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": [entry]}))
        return path

    @pytest.mark.parametrize("rule", ["PL101", "PL104", "PL201", "PL202"])
    def test_todo_justified_new_family_entries_are_rejected(
        self, tmp_path, rule
    ):
        # The ratchet must not let anyone absorb a concurrency or parity
        # finding into the baseline without a human-written justification.
        baseline = self.baseline_with(tmp_path, rule)
        with pytest.raises(PlaceholderJustificationError):
            load_baseline(str(baseline))
        code, out, err = run_cli(
            "--rules", rule, "--baseline", str(baseline)
        )
        assert code == EXIT_USAGE
        assert "TODO: justify" in err
