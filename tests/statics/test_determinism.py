"""PL001 — protocol-layer determinism rule."""

import textwrap

from repro.statics import lint_source


def pl001(source: str, module: str = "repro.core.snippet"):
    findings = lint_source(textwrap.dedent(source), module=module, rule_ids=["PL001"])
    assert all(f.rule == "PL001" for f in findings)
    return findings


class TestAmbientNondeterminism:
    def test_random_module_call_flagged(self):
        findings = pl001(
            """
            import random

            def pick():
                return random.random()
            """
        )
        assert len(findings) == 1
        assert "random.random" in findings[0].message

    def test_seeded_random_constructor_allowed(self):
        assert not pl001(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """
        )

    def test_from_import_of_random_function_flagged(self):
        findings = pl001(
            """
            from random import randint

            def roll():
                return randint(1, 6)
            """
        )
        # The import itself and the call are both reported.
        assert len(findings) == 2
        assert any("from random import randint" in f.message for f in findings)

    def test_from_import_of_seeded_random_allowed(self):
        assert not pl001(
            """
            from random import Random

            def make_rng(seed):
                return Random(seed)
            """
        )

    def test_time_and_uuid_flagged(self):
        findings = pl001(
            """
            import time
            import uuid

            def stamp():
                return time.time(), uuid.uuid4()
            """
        )
        messages = " ".join(f.message for f in findings)
        assert "time.time" in messages
        assert "uuid.uuid4" in messages

    def test_os_urandom_flagged(self):
        findings = pl001(
            """
            import os

            def entropy():
                return os.urandom(8)
            """
        )
        assert len(findings) == 1
        assert "os.urandom" in findings[0].message

    def test_wall_clock_datetime_flagged(self):
        findings = pl001(
            """
            from datetime import datetime

            def when():
                return datetime.now()
            """
        )
        assert len(findings) == 1
        assert "wall clock" in findings[0].message

    def test_non_protocol_module_out_of_scope(self):
        source = """
        import random

        def pick():
            return random.random()
        """
        assert not pl001(source, module="repro.analysis.snippet")
        assert not pl001(source, module="repro.observability.snippet")


class TestSetIterationOrder:
    def test_for_loop_over_set_local_flagged(self):
        findings = pl001(
            """
            def walk():
                members = {1, 2, 3}
                for m in members:
                    yield m
            """
        )
        assert len(findings) == 1
        assert "bare set" in findings[0].message

    def test_sorted_iteration_allowed(self):
        assert not pl001(
            """
            def walk():
                members = {1, 2, 3}
                for m in sorted(members):
                    yield m
            """
        )

    def test_known_set_attribute_flagged(self):
        findings = pl001(
            """
            def drain(execution):
                return [p for p in execution.honest]
            """
        )
        assert len(findings) == 1

    def test_order_insensitive_reducer_exempt(self):
        assert not pl001(
            """
            def total(execution):
                return sum(p for p in execution.honest)
            """
        )

    def test_annotated_parameter_flagged(self):
        findings = pl001(
            """
            from typing import Set

            def walk(members: Set[int]):
                for m in members:
                    yield m
            """
        )
        assert len(findings) == 1

    def test_set_algebra_flagged(self):
        findings = pl001(
            """
            def diff():
                a = {1, 2}
                b = {2, 3}
                for x in a - b:
                    yield x
            """
        )
        assert len(findings) == 1

    def test_list_iteration_not_flagged(self):
        assert not pl001(
            """
            def walk():
                members = [1, 2, 3]
                for m in members:
                    yield m
            """
        )


class TestSuppression:
    def test_same_line_disable_silences(self):
        assert not pl001(
            """
            import random

            def pick():
                return random.random()  # protolint: disable=PL001
            """
        )

    def test_disable_all_silences(self):
        assert not pl001(
            """
            def walk():
                members = {1, 2}
                for m in members:  # protolint: disable=all
                    yield m
            """
        )

    def test_disable_other_rule_does_not_silence(self):
        findings = pl001(
            """
            import random

            def pick():
                return random.random()  # protolint: disable=PL002
            """
        )
        assert len(findings) == 1
