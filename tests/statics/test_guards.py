"""PL002 — guard discipline (no bare assert in shipped simulator code)."""

import textwrap

from repro.statics import lint_source


def pl002(source: str, module: str = "repro.protocols.snippet"):
    findings = lint_source(textwrap.dedent(source), module=module, rule_ids=["PL002"])
    assert all(f.rule == "PL002" for f in findings)
    return findings


class TestBareAssert:
    def test_assert_flagged(self):
        findings = pl002(
            """
            def check(x):
                assert x >= 0
            """
        )
        assert len(findings) == 1
        assert "python -O" in findings[0].message

    def test_assert_message_included_in_finding(self):
        findings = pl002(
            """
            def check(engine):
                assert engine is not None, "engine missing"
            """
        )
        assert len(findings) == 1
        assert "engine missing" in findings[0].message

    def test_raise_based_guard_clean(self):
        assert not pl002(
            """
            from repro.net.protocol import ProtocolStateError

            def check(engine):
                if engine is None:
                    raise ProtocolStateError("engine missing")
            """
        )

    def test_every_assert_reported(self):
        findings = pl002(
            """
            def check(x, y):
                assert x
                assert y
            """
        )
        assert len(findings) == 2
        assert findings[0].line != findings[1].line

    def test_suppression(self):
        assert not pl002(
            """
            def check(x):
                assert x >= 0  # protolint: disable=PL002
            """
        )

    def test_applies_across_repro_packages(self):
        # Unlike PL001, guard discipline covers every shipped package.
        for module in (
            "repro.analysis.snippet",
            "repro.observability.snippet",
            "repro.trees.snippet",
        ):
            assert len(pl002("assert True\n", module=module)) == 1
