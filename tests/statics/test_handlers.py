"""PL003 — handler exhaustiveness against the message-type registry."""

import os
import textwrap

import pytest

from repro.statics import LintConfig, lint_contexts, lint_source, parse_module
from repro.statics.discovery import source_root
from repro.statics.rules.handlers import extract_message_types

CONFIG_TAGS = {
    "val": "test value message",
    "echo": "test echo message",
    "ds": "signature preimage",
}
EXEMPT = {"ds"}


def pl003(source: str, module: str = "repro.protocols.snippet"):
    config = LintConfig(declared_tags=dict(CONFIG_TAGS), handler_exempt_tags=set(EXEMPT))
    findings = lint_source(
        textwrap.dedent(source), module=module, rule_ids=["PL003"], config=config
    )
    assert all(f.rule == "PL003" for f in findings)
    return findings


class TestDeclaredness:
    def test_sent_undeclared_tag_flagged(self):
        findings = pl003(
            """
            def send(n):
                return {r: ("mystery", 1) for r in range(n)}
            """
        )
        # Both facets fire: the tag is undeclared AND the module never
        # handles what it sends.
        assert len(findings) == 2
        assert all("'mystery'" in f.message for f in findings)
        assert any("not declared" in f.message for f in findings)
        assert any("never handled" in f.message for f in findings)

    def test_handled_undeclared_tag_flagged(self):
        findings = pl003(
            """
            def handle(payload):
                if payload[0] == "mystery":
                    return payload[1]
            """
        )
        assert len(findings) == 1
        assert "handler references tag 'mystery'" in findings[0].message

    def test_declared_send_and_handle_clean(self):
        assert not pl003(
            """
            def send(value, n):
                return {r: ("val", value) for r in range(n)}

            def handle(payload):
                if payload[0] == "val":
                    return payload[1]
            """
        )


class TestSymmetry:
    def test_sent_but_unhandled_flagged_once(self):
        findings = pl003(
            """
            def send_a(value, n):
                return {r: ("val", value) for r in range(n)}

            def send_b(value, n):
                return {r: ("val", value, 2) for r in range(n)}
            """
        )
        assert len(findings) == 1
        assert "never handled" in findings[0].message

    def test_exempt_tag_skips_symmetry(self):
        assert not pl003(
            """
            def sign(session, origin, value):
                return ("ds", session, origin, value)
            """
        )

    def test_membership_handling_counts(self):
        assert not pl003(
            """
            def send(value, n):
                return {r: ("val", value) for r in range(n)}

            def handle(payload):
                kind = payload[0]
                if kind in ("val", "echo"):
                    return payload[1]
            """
        )

    def test_payload_helper_call_counts(self):
        assert not pl003(
            """
            def handle(payload, n):
                return clean(payload, "echo", n)

            def send(vector, n):
                return {r: ("echo", vector) for r in range(n)}
            """
        )

    def test_adversary_module_declaredness_only(self):
        # Adversaries forge messages without handling them: sending a
        # declared tag is fine, an undeclared one is still flagged.
        src = """
        def forge(n):
            return [(r, ("val", 0.0)) for r in range(n)]
        """
        assert not pl003(src, module="repro.adversary.snippet")
        bad = """
        def forge(n):
            return [(r, ("junkjunk", 0.0)) for r in range(n)]
        """
        findings = pl003(bad, module="repro.adversary.snippet")
        assert len(findings) == 1
        assert "not declared" in findings[0].message

    def test_out_of_scope_package_ignored(self):
        assert not pl003(
            """
            def helper(n):
                return ("whatever", n)
            """,
            module="repro.analysis.snippet",
        )


class TestFalsePositiveGuards:
    def test_enum_tuple_not_a_send(self):
        assert not pl003(
            """
            BEHAVIOURS = ("faithful", "silent", "noisy")
            """
        )

    def test_membership_comparator_not_a_send(self):
        assert not pl003(
            """
            def check(direction):
                if direction not in ("up", "down"):
                    raise ValueError(direction)
            """
        )

    def test_non_tag_shaped_head_ignored(self):
        assert not pl003(
            """
            def pair():
                return ("A Long Sentence Head!", 1)
            """
        )

    def test_suppression(self):
        assert not pl003(
            """
            def send(n):
                return {r: ("mystery", 1) for r in range(n)}  # protolint: disable=PL003
            """
        )


class TestRegistryExtraction:
    def test_real_registry_parses(self):
        path = os.path.join(source_root(), "repro", "net", "messages.py")
        declared, exempt = extract_message_types(path)
        assert "val" in declared
        assert "echo" in declared
        assert exempt <= set(declared)

    def test_missing_registry_raises(self, tmp_path):
        stub = tmp_path / "messages.py"
        stub.write_text("X = 1\n")
        with pytest.raises(ValueError):
            extract_message_types(str(stub))

    def test_non_literal_registry_raises(self, tmp_path):
        stub = tmp_path / "messages.py"
        stub.write_text("MESSAGE_TYPES = dict(val='v')\n")
        with pytest.raises(ValueError):
            extract_message_types(str(stub))


class TestDeadDeclarations:
    def _contexts(self, declared_body: str, protocol_body: str):
        registry = parse_module(
            "<memory>",
            "src/repro/net/messages.py",
            "repro.net.messages",
            source=textwrap.dedent(declared_body),
        )
        protocol = parse_module(
            "<memory>",
            "src/repro/protocols/snippet.py",
            "repro.protocols.snippet",
            source=textwrap.dedent(protocol_body),
        )
        return [registry, protocol]

    def test_declared_never_handled_reported_at_registry(self):
        contexts = self._contexts(
            """
            MESSAGE_TYPES = {"val": "value", "ghost": "never used"}
            """,
            """
            def handle(payload):
                if payload[0] == "val":
                    return payload[1]
            """,
        )
        config = LintConfig(
            declared_tags={"val": "value", "ghost": "never used"},
            handler_exempt_tags=set(),
        )
        result = lint_contexts(contexts, rule_ids=["PL003"], config=config)
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.path == "src/repro/net/messages.py"
        assert "'ghost'" in finding.message

    def test_no_dead_check_without_registry_context(self):
        # A partial run (linting one file) must not claim every other tag
        # is dead just because its handlers were not in scope.
        config = LintConfig(
            declared_tags={"val": "value", "ghost": "never used"},
            handler_exempt_tags=set(),
        )
        findings = lint_source(
            textwrap.dedent(
                """
                def handle(payload):
                    if payload[0] == "val":
                        return payload[1]
                """
            ),
            module="repro.protocols.snippet",
            rule_ids=["PL003"],
            config=config,
        )
        assert not findings
