"""Tests for the memoryless iteration-outline baseline on ℝ."""

import math

import pytest

from repro.adversary import RandomNoiseAdversary, SilentAdversary
from repro.adversary.realaa_attacks import (
    BurnScheduleAdversary,
    SplitBroadcastAdversary,
)
from repro.analysis import convergence_factors, honest_value_ranges
from repro.baselines import IterativeRealAAParty, halving_iterations
from repro.net import run_protocol


def run_baseline(inputs, t, adversary=None, **kwargs):
    n = len(inputs)
    return run_protocol(
        n,
        t,
        lambda pid: IterativeRealAAParty(pid, n, t, inputs[pid], **kwargs),
        adversary=adversary,
    )


class TestHalvingIterations:
    def test_exact_powers(self):
        assert halving_iterations(8.0, 1.0) == 3
        assert halving_iterations(1024.0, 1.0) == 10

    def test_trivial(self):
        assert halving_iterations(0.5, 1.0) == 1

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            halving_iterations(8.0, 0.0)


class TestConstruction:
    def test_one_budget_spec(self):
        with pytest.raises(ValueError):
            IterativeRealAAParty(0, 4, 1, 0.0)
        with pytest.raises(ValueError):
            IterativeRealAAParty(0, 4, 1, 0.0, known_range=1.0, iterations=2)

    def test_distribution_validated(self):
        with pytest.raises(ValueError):
            IterativeRealAAParty(0, 4, 1, 0.0, iterations=1, distribution="pigeon")

    def test_durations(self):
        grade = IterativeRealAAParty(0, 4, 1, 0.0, iterations=4)
        naive = IterativeRealAAParty(0, 4, 1, 0.0, iterations=4, distribution="naive")
        assert grade.duration == 12
        assert naive.duration == 4


class TestConvergence:
    INPUTS = [0.0, 10.0, 0.0, 10.0, 5.0, 0.0, 10.0]

    def test_halving_rate_fault_free(self):
        result = run_baseline(self.INPUTS, t=0, known_range=10.0, epsilon=0.01)
        ranges = honest_value_ranges(result)
        for before, after in zip(ranges, ranges[1:]):
            assert after <= before / 2 + 1e-12

    def test_agreement_reached_with_silent_adversary(self):
        result = run_baseline(
            self.INPUTS, t=2, known_range=10.0, epsilon=0.5, adversary=SilentAdversary()
        )
        outs = list(result.honest_outputs.values())
        assert max(outs) - min(outs) <= 0.5

    def test_validity_under_noise(self):
        result = run_baseline(
            self.INPUTS,
            t=2,
            known_range=10.0,
            epsilon=0.5,
            adversary=RandomNoiseAdversary(seed=5),
        )
        honest_inputs = [self.INPUTS[p] for p in sorted(result.honest)]
        lo, hi = min(honest_inputs), max(honest_inputs)
        for v in result.honest_outputs.values():
            assert lo <= v <= hi

    def test_validity_under_split_broadcast(self):
        result = run_baseline(
            self.INPUTS,
            t=2,
            known_range=10.0,
            epsilon=0.5,
            distribution="naive",
            adversary=SplitBroadcastAdversary(),
        )
        honest_inputs = [self.INPUTS[p] for p in sorted(result.honest)]
        lo, hi = min(honest_inputs), max(honest_inputs)
        for v in result.honest_outputs.values():
            assert lo <= v <= hi


class TestAblationA1MemoryMatters:
    """The paper's key point: without memory a Byzantine party can cause
    inconsistencies every iteration; with memory it pays once."""

    INPUTS = [0.0, 0.0, 0.0, 10.0, 10.0, 0.0, 0.0]

    def test_memoryless_suffers_repeatedly(self):
        result = run_baseline(
            self.INPUTS,
            t=2,
            iterations=5,
            memory=False,
            adversary=BurnScheduleAdversary([2] * 5, reuse_burners=True),
        )
        ranges = honest_value_ranges(result)
        assert all(r > 0 for r in ranges), ranges

    def test_memory_caps_the_damage(self):
        result = run_baseline(
            self.INPUTS,
            t=2,
            iterations=5,
            memory=True,
            adversary=BurnScheduleAdversary([2] * 5, reuse_burners=True),
        )
        ranges = honest_value_ranges(result)
        assert ranges[-1] == pytest.approx(0.0, abs=1e-12)

    def test_memoryless_rate_is_at_most_half(self):
        """Even under sustained attack the outline halves per iteration —
        the guarantee its O(log(D/ε)) analysis rests on."""
        result = run_baseline(
            self.INPUTS,
            t=2,
            iterations=5,
            memory=False,
            adversary=BurnScheduleAdversary([2] * 5, reuse_burners=True),
        )
        ranges = honest_value_ranges(result)
        for before, after in zip(ranges, ranges[1:]):
            assert after <= before / 2 + 1e-9


class TestNaiveDistribution:
    def test_fault_free_naive_converges(self):
        result = run_baseline(
            [0.0, 8.0, 4.0, 2.0], t=0, known_range=8.0, epsilon=0.5, distribution="naive"
        )
        outs = list(result.honest_outputs.values())
        assert max(outs) - min(outs) <= 0.5

    def test_naive_uses_one_round_per_iteration(self):
        result = run_baseline(
            [0.0, 8.0, 4.0, 2.0], t=0, iterations=4, distribution="naive"
        )
        assert result.trace.rounds_executed == 4

    def test_junk_payloads_ignored(self):
        result = run_baseline(
            [0.0, 8.0, 4.0, 2.0, 6.0, 0.0, 0.0],
            t=2,
            iterations=4,
            distribution="naive",
            adversary=RandomNoiseAdversary(seed=1),
        )
        for v in result.honest_outputs.values():
            assert 0.0 <= v <= 8.0
