"""Tests for the iterated safe-area baseline on trees ([33]-style)."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary import (
    CrashAdversary,
    PassiveAdversary,
    RandomNoiseAdversary,
    SilentAdversary,
)
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.analysis import tree_agreement, tree_output_diameter, tree_validity
from repro.baselines import IterativeTreeAAParty, tree_halving_iterations
from repro.net import run_protocol
from repro.trees import (
    binary_tree,
    diameter,
    distance,
    figure_tree,
    path_tree,
    random_tree,
    star_tree,
)

from ..strategies import trees_with_vertex_choices


def run_baseline(tree, inputs, t, adversary=None, iterations=None):
    n = len(inputs)
    return run_protocol(
        n,
        t,
        lambda pid: IterativeTreeAAParty(pid, n, t, tree, inputs[pid], iterations),
        adversary=adversary,
    )


class TestIterationCount:
    def test_trivial_diameter(self):
        assert tree_halving_iterations(0) == 1
        assert tree_halving_iterations(1) == 1

    def test_logarithmic_growth(self):
        assert tree_halving_iterations(64) == 8  # log2(64) + 2
        assert tree_halving_iterations(1024) == 12

    def test_duration(self):
        tree = path_tree(9)
        party = IterativeTreeAAParty(0, 4, 1, tree, tree.vertices[0])
        assert party.duration == 3 * tree_halving_iterations(8)


class TestConstruction:
    def test_resilience(self):
        with pytest.raises(ValueError):
            IterativeTreeAAParty(0, 3, 1, figure_tree(), "v1")

    def test_input_validated(self):
        with pytest.raises(KeyError):
            IterativeTreeAAParty(0, 4, 1, figure_tree(), "zzz")


class TestAAProperties:
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: None,
            lambda: SilentAdversary(),
            lambda: PassiveAdversary(),
            lambda: RandomNoiseAdversary(seed=4),
            lambda: CrashAdversary(crash_round=5, partial_to=1),
            lambda: BurnScheduleAdversary([1, 1]),
        ],
    )
    @pytest.mark.parametrize(
        "tree_factory",
        [
            lambda: figure_tree(),
            lambda: path_tree(20),
            lambda: star_tree(8),
            lambda: binary_tree(3),
            lambda: random_tree(25, seed=17),
        ],
    )
    def test_validity_and_agreement(self, adversary_factory, tree_factory):
        tree = tree_factory()
        n, t = 7, 2
        rng = random.Random(11)
        inputs = [rng.choice(tree.vertices) for _ in range(n)]
        result = run_baseline(tree, inputs, t, adversary=adversary_factory())
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        honest_outputs = list(result.honest_outputs.values())
        assert tree_validity(tree, honest_inputs, honest_outputs)
        assert tree_agreement(tree, honest_outputs)

    @given(trees_with_vertex_choices(n_choices=7, min_vertices=2))
    def test_property_random_trees(self, tree_and_inputs):
        tree, inputs = tree_and_inputs
        result = run_baseline(tree, inputs, 2, adversary=BurnScheduleAdversary([2]))
        honest_inputs = [inputs[p] for p in sorted(result.honest)]
        honest_outputs = list(result.honest_outputs.values())
        assert tree_validity(tree, honest_inputs, honest_outputs)
        assert tree_agreement(tree, honest_outputs)


class TestConvergenceBehaviour:
    def test_vertex_spread_shrinks_per_iteration(self):
        tree = path_tree(33)
        inputs = [tree.vertices[0], tree.vertices[32]] * 3 + [tree.vertices[16]]
        result = run_baseline(tree, inputs, 2, adversary=SilentAdversary())
        # reconstruct per-iteration honest vertex spreads
        histories = [result.parties[p].history for p in sorted(result.honest)]
        iterations = len(histories[0])
        previous = None
        for i in range(iterations):
            vertices = [h[i].new_vertex for h in histories]
            spread = max(
                distance(tree, a, b) for a in vertices for b in vertices
            )
            if previous is not None:
                assert spread <= previous
            previous = spread
        assert previous <= 1

    def test_rounds_scale_with_log_diameter(self):
        """The baseline's defining cost: Θ(log D) iterations — so a path
        four times as long needs visibly more rounds."""
        short = IterativeTreeAAParty(0, 4, 1, path_tree(16), path_tree(16).vertices[0])
        long = IterativeTreeAAParty(0, 4, 1, path_tree(256), path_tree(256).vertices[0])
        assert long.duration > short.duration
        assert long.duration == short.duration + 3 * 4  # log2 ratio = 4
