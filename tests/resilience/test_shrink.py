"""Counterexample shrinking: the weakened-guard-to-minimal-repro pipeline.

The acceptance path: a scenario whose corruption exceeds the ``t < n/3``
threshold (parties' assumed tolerance stays legal — the network just
hands the adversary more parties) violates ε-agreement; the shrinker
reduces it while preserving that violation; the minimal scenario replays
the same verdict deterministically, ready to freeze as a corpus case.
"""

import dataclasses

import pytest

from repro.resilience import (
    NotViolatingError,
    Scenario,
    check_violations,
    shrink,
    shrink_report,
)
from repro.resilience.shrink import _shrink_tree_spec

#: Over-threshold silent corruption: 3 of 7 parties, assumed t = 2.
#: Honest inputs are spread (0/10 alternating) so halting the corrupted
#: echoes reliably leaves the honest outputs > epsilon apart.
VIOLATING = Scenario(
    protocol="real-aa",
    n=7,
    t=2,
    epsilon=0.5,
    inputs=(0.0, 5.0, 10.0, 5.0, 0.0, 5.0, 10.0),
    adversary="silent",
    corrupt=(1, 3, 5),
)

#: Same shape driven by a free-running chaos adversary (seed chosen so
#: the drawn behaviour stream actually breaks agreement).
CHAOS_VIOLATING = dataclasses.replace(VIOLATING, adversary="chaos:8")


class TestPreconditions:
    def test_the_violating_scenario_actually_violates(self):
        assert check_violations(VIOLATING) == ("agreement",)

    def test_clean_scenarios_are_rejected(self):
        clean = Scenario(
            protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
            adversary="silent", corrupt=(2,),
        )
        with pytest.raises(NotViolatingError):
            shrink(clean)


class TestEndToEndPipeline:
    def test_shrink_reduces_and_preserves_the_failure(self):
        result = shrink(VIOLATING)
        assert result.reduced
        assert result.minimal.cost() < VIOLATING.cost()
        assert result.minimal.n <= VIOLATING.n
        assert len(result.minimal.corrupt) < len(VIOLATING.corrupt)
        assert "agreement" in result.minimal_violations

    def test_minimal_scenario_replays_deterministically(self):
        result = shrink(VIOLATING)
        first = check_violations(result.minimal)
        second = check_violations(result.minimal)
        assert first == second == result.minimal_violations

    def test_minimal_scenario_survives_json(self):
        import json

        result = shrink(VIOLATING)
        payload = json.loads(json.dumps(result.minimal.to_dict()))
        rebuilt = Scenario.from_dict(payload)
        assert check_violations(rebuilt) == result.minimal_violations

    def test_report_is_human_readable(self):
        result = shrink(VIOLATING)
        text = shrink_report(result)
        assert "reductions" in text
        assert "agreement" in text


class TestChaosScriptCapture:
    def test_chaos_violation_becomes_a_scripted_reproduction(self):
        result = shrink(CHAOS_VIOLATING)
        minimal = result.minimal
        # The free-running RNG stream was pinned to an explicit script
        # and then ddmin-truncated to a handful of scripted misbehaviours.
        assert minimal.chaos_script is not None
        assert len(minimal.chaos_script) <= 5
        assert "agreement" in result.minimal_violations

    def test_scripted_minimum_replays_deterministically(self):
        result = shrink(CHAOS_VIOLATING)
        assert (
            check_violations(result.minimal)
            == check_violations(result.minimal)
            == result.minimal_violations
        )


class TestShrinkBudget:
    def test_check_budget_is_respected(self):
        result = shrink(VIOLATING, max_checks=3)
        assert result.checks <= 3

    def test_fixpoint_needs_no_budget_backstop(self):
        # Termination is structural (cost strictly decreases); the
        # default budget should never be the binding constraint here.
        result = shrink(VIOLATING)
        assert result.checks < 400


class TestTreeSpecShrinking:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("path:12", "path:6"),
            ("path:3", "path:2"),
            ("path:2", None),
            ("star:8", "star:4"),
            ("random:16:7", "random:8:7"),
            ("caterpillar:4x3", "caterpillar:4x2"),
            ("caterpillar:4x1", "caterpillar:2x1"),
            ("caterpillar:2x1", None),
        ],
    )
    def test_specs_shrink_within_their_family(self, spec, expected):
        assert _shrink_tree_spec(spec) == expected

    def test_tree_scenario_shrinks_the_tree(self):
        scenario = Scenario(
            protocol="tree-aa", n=7, t=2, tree="path:9",
            inputs=(0, 8, 4, 0, 8, 4, 0), adversary="silent",
            corrupt=(1, 3, 5),
        )
        assert check_violations(scenario) == ("agreement",)
        result = shrink(scenario)
        assert result.reduced
        assert "agreement" in result.minimal_violations
        # tree inputs are indices, so the shrunken tree remaps them
        # instead of invalidating the scenario
        assert result.minimal.tree is not None


class TestFaultPlanShrinking:
    def test_fault_plan_is_weakened_or_dropped(self):
        # Heavy drop rate on every honest channel starves the protocol:
        # over-threshold corruption plus faults, shrinker must keep the
        # failure while simplifying the plan.
        scenario = dataclasses.replace(
            VIOLATING,
            fault_plan={
                "drop": 0.0,
                "duplicate": 0.9,
                "corrupt": 0.0,
                "seed": 3,
                "allow_model_violations": True,
            },
        )
        violations = check_violations(scenario)
        assert violations  # still violating with the plan attached
        result = shrink(scenario)
        # Either the plan vanished entirely or it got strictly cheaper.
        minimal_plan = result.minimal.fault_plan
        assert minimal_plan is None or result.minimal.cost() < scenario.cost()
        assert set(result.minimal_violations) & set(violations)
