"""Invariant oracles judged over hand-crafted scenario results.

The oracles must be *total*: whatever garbage an execution produces —
``NaN`` outputs, ``None`` outputs, unhashable non-vertices — evaluation
returns violations, it never raises.
"""

import math

from repro.cli import parse_tree_spec
from repro.resilience import (
    ORACLE_NAMES,
    Scenario,
    ScenarioResult,
    Violation,
    evaluate,
    violated_oracles,
)


def real_result(**overrides):
    scenario = Scenario(
        protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
        adversary="silent", corrupt=(3,), epsilon=0.5,
    )
    result = ScenarioResult(
        scenario=scenario,
        honest_inputs={0: 0.0, 1: 1.0, 2: 2.0},
        honest_outputs={0: 1.0, 1: 1.2, 2: 1.4},
        rounds=5,
        round_limit=10,
    )
    for key, value in overrides.items():
        setattr(result, key, value)
    return result


def tree_result(**overrides):
    tree = parse_tree_spec("path:5")
    a, b, c, d, e = tree.vertices
    scenario = Scenario(
        protocol="tree-aa", n=4, t=1, inputs=(0, 4, 2, 1),
        adversary="silent", corrupt=(3,), tree="path:5",
    )
    result = ScenarioResult(
        scenario=scenario,
        honest_inputs={0: a, 1: e, 2: c},
        honest_outputs={0: c, 1: c, 2: d},
        rounds=3,
        round_limit=12,
        tree_obj=tree,
    )
    for key, value in overrides.items():
        setattr(result, key, value)
    return result


class TestCleanResults:
    def test_clean_real_result_has_no_violations(self):
        assert evaluate(real_result()) == []

    def test_clean_tree_result_has_no_violations(self):
        assert evaluate(tree_result()) == []

    def test_oracle_names_cover_all_violations(self):
        assert set(ORACLE_NAMES) == {
            "no-exception", "termination", "validity", "agreement",
            "round-bound",
        }


class TestNoException:
    def test_error_short_circuits_to_single_violation(self):
        result = real_result(error="ValueError: boom @ x.py:3",
                             honest_outputs={})
        violations = evaluate(result)
        assert violated_oracles(violations) == ["no-exception"]
        assert "boom" in violations[0].detail


class TestTermination:
    def test_stalled_async_run(self):
        result = real_result(completed=False, stall="step budget exhausted")
        assert "termination" in violated_oracles(evaluate(result))

    def test_none_outputs_are_termination_not_validity(self):
        result = real_result(honest_outputs={0: 1.0, 1: None, 2: 1.2})
        assert violated_oracles(evaluate(result)) == ["termination"]

    def test_no_outputs_at_all_skips_validity_and_agreement(self):
        result = real_result(honest_outputs={})
        assert violated_oracles(evaluate(result)) == ["termination"]


class TestRealValidityAndAgreement:
    def test_nan_output_is_a_validity_violation_not_a_crash(self):
        result = real_result(honest_outputs={0: 1.0, 1: math.nan, 2: 1.2})
        assert "validity" in violated_oracles(evaluate(result))

    def test_infinite_output_is_a_validity_violation(self):
        result = real_result(honest_outputs={0: 1.0, 1: math.inf, 2: 1.2})
        assert "validity" in violated_oracles(evaluate(result))

    def test_output_outside_input_hull(self):
        result = real_result(honest_outputs={0: 1.0, 1: 1.2, 2: 9.0})
        names = violated_oracles(evaluate(result))
        assert "validity" in names

    def test_spread_beyond_epsilon_is_agreement(self):
        result = real_result(honest_outputs={0: 0.0, 1: 1.0, 2: 2.0})
        assert "agreement" in violated_oracles(evaluate(result))

    def test_boolean_output_is_not_a_real_number(self):
        result = real_result(honest_outputs={0: 1.0, 1: True, 2: 1.2})
        assert "validity" in violated_oracles(evaluate(result))


class TestTreeValidityAndAgreement:
    def test_non_vertex_output(self):
        result = tree_result()
        result.honest_outputs[0] = "not-a-vertex"
        assert "validity" in violated_oracles(evaluate(result))

    def test_unhashable_output_does_not_crash(self):
        result = tree_result()
        result.honest_outputs[0] = ["unhashable"]
        assert "validity" in violated_oracles(evaluate(result))

    def test_output_outside_convex_hull(self):
        tree = parse_tree_spec("path:5")
        a, b, c, d, e = tree.vertices
        result = tree_result(
            honest_inputs={0: a, 1: b, 2: a},
            honest_outputs={0: a, 1: b, 2: e},
        )
        assert "validity" in violated_oracles(evaluate(result))

    def test_output_diameter_beyond_one_is_agreement(self):
        tree = parse_tree_spec("path:5")
        a, b, c, d, e = tree.vertices
        result = tree_result(honest_outputs={0: a, 1: c, 2: e})
        assert "agreement" in violated_oracles(evaluate(result))

    def test_missing_tree_object_is_reported(self):
        result = tree_result(tree_obj=None)
        assert "validity" in violated_oracles(evaluate(result))


class TestRoundBound:
    def test_rounds_over_budget(self):
        result = real_result(rounds=11, round_limit=10)
        assert violated_oracles(evaluate(result)) == ["round-bound"]

    def test_no_limit_means_no_check(self):
        result = real_result(rounds=10_000, round_limit=None)
        assert evaluate(result) == []


class TestViolationPlumbing:
    def test_violation_round_trips_through_json(self):
        violation = Violation("agreement", "spread 3 exceeds epsilon 0.5")
        assert Violation.from_dict(violation.to_dict()) == violation

    def test_violated_oracles_deduplicates_and_sorts(self):
        names = violated_oracles(
            [
                Violation("validity", "a"),
                Violation("agreement", "b"),
                Violation("validity", "c"),
            ]
        )
        assert names == ["agreement", "validity"]
