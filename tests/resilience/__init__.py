"""Tests for the resilience lab (scenarios, oracles, campaigns, shrinking)."""
