"""Campaign engine: deterministic generation, execution, reporting.

The flagship acceptance test runs a 200-scenario seeded campaign across
every adversary kind and every scheduler and requires *zero* invariant
violations — the resilience lab's statement that the simulator's guards
hold everywhere in the sampled space, not just on the handwritten tests.
"""

import json

import pytest

from repro.resilience import (
    CampaignConfig,
    Scenario,
    generate_scenarios,
    resilience_point_runner,
    run_campaign,
)

#: Seed of the flagship regression campaign (also replayed by CI).
FLAGSHIP_SEED = 42


class TestConfigValidation:
    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            CampaignConfig(count=0)

    def test_party_range_must_be_sane(self):
        with pytest.raises(ValueError, match="min_n"):
            CampaignConfig(min_n=6, max_n=4)

    def test_fault_plans_need_the_explicit_gate(self):
        with pytest.raises(ValueError, match="allow_model_violations"):
            CampaignConfig(max_fault_probability=0.2)
        CampaignConfig(max_fault_probability=0.2, allow_model_violations=True)


class TestGeneration:
    def test_generation_is_deterministic(self):
        config = CampaignConfig(count=40, seed=7)
        assert generate_scenarios(config) == generate_scenarios(config)

    def test_different_seeds_differ(self):
        a = generate_scenarios(CampaignConfig(count=40, seed=1))
        b = generate_scenarios(CampaignConfig(count=40, seed=2))
        assert a != b

    def test_scenarios_are_valid_and_json_serialisable(self):
        for scenario in generate_scenarios(CampaignConfig(count=60, seed=3)):
            payload = json.loads(json.dumps(scenario.to_dict()))
            assert Scenario.from_dict(payload) == scenario

    def test_legal_configs_keep_corruption_legal(self):
        for scenario in generate_scenarios(CampaignConfig(count=60, seed=4)):
            assert scenario.n > 3 * scenario.t
            assert len(scenario.corrupt) <= scenario.t

    def test_corruption_ratio_crosses_the_threshold(self):
        config = CampaignConfig(
            count=60, seed=5, corruption_ratio=0.45,
            adversaries=("silent",), protocols=("real-aa",),
        )
        scenarios = generate_scenarios(config)
        # Parties keep a legal assumed t; the adversary's set exceeds it.
        assert all(s.n > 3 * s.t for s in scenarios)
        assert any(3 * len(s.corrupt) >= s.n for s in scenarios)

    def test_flagship_campaign_covers_every_adversary_and_scheduler(self):
        scenarios = generate_scenarios(
            CampaignConfig(count=200, seed=FLAGSHIP_SEED)
        )
        adversaries = {s.adversary.split(":")[0] for s in scenarios}
        schedulers = {
            s.scheduler.split(":")[0] for s in scenarios if s.scheduler
        }
        protocols = {s.protocol for s in scenarios}
        assert adversaries == {"none", "passive", "silent", "noise", "crash", "chaos"}
        assert schedulers == {"fifo", "random", "split", "delay"}
        assert protocols == {"real-aa", "tree-aa", "async-real-aa"}


class TestPointRunner:
    def test_row_is_self_contained_and_json(self):
        scenario = Scenario(
            protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
            adversary="silent", corrupt=(2,),
        )
        row = resilience_point_runner({"scenario": scenario.to_dict()}, 999)
        json.dumps(row)  # must be serialisable for the sweep cache
        assert row["ok"] is True
        assert row["violated"] == []
        assert Scenario.from_dict(row["scenario"]) == scenario

    def test_engine_seed_is_ignored(self):
        scenario = Scenario(
            protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
            adversary="noise:3", corrupt=(2,), seed=5,
        )
        params = {"scenario": scenario.to_dict()}
        assert resilience_point_runner(params, 1) == resilience_point_runner(
            params, 2
        )

    def test_violating_row_reports_the_oracles(self):
        scenario = Scenario(
            protocol="real-aa", n=7, t=2, epsilon=0.5,
            inputs=(0.0, 5.0, 10.0, 5.0, 0.0, 5.0, 10.0),
            adversary="silent", corrupt=(1, 3, 5),
        )
        row = resilience_point_runner({"scenario": scenario.to_dict()}, 0)
        assert row["ok"] is False
        assert row["violated"] == ["agreement"]
        assert row["violations"][0]["oracle"] == "agreement"


class TestCampaignRuns:
    def test_small_campaign_is_deterministic(self, tmp_path):
        config = CampaignConfig(count=12, seed=9)
        first = run_campaign(config, no_cache=True)
        second = run_campaign(config, no_cache=True)
        assert first.rows == second.rows

    def test_campaign_report_digests(self):
        config = CampaignConfig(
            count=10, seed=5, corruption_ratio=0.45,
            adversaries=("silent",), protocols=("real-aa",),
        )
        report = run_campaign(config, no_cache=True)
        assert not report.ok
        assert report.violations_by_oracle().get("agreement", 0) > 0
        assert set(report.violations_by_adversary()) == {"silent"}
        pairs = report.violating_scenarios()
        assert pairs and all(violations for _, violations in pairs)
        assert "violating" in report.summary()

    def test_campaign_jsonl_sibling(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        config = CampaignConfig(count=4, seed=11)
        run_campaign(config, no_cache=True, jsonl_path=str(path))
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records[0]["type"] == "sweep_header"
        assert sum(1 for r in records if r["type"] == "point") == 4

    def test_flagship_campaign_is_clean(self):
        # The acceptance criterion: >= 200 seeded scenarios spanning all
        # adversaries and schedulers, zero violations under legal guards.
        config = CampaignConfig(count=200, seed=FLAGSHIP_SEED)
        report = run_campaign(config, jobs=2, no_cache=True)
        assert len(report.rows) == 200
        failing = [
            (row["scenario"], row["violated"])
            for row in report.violating_rows
        ]
        assert report.ok, f"violating scenarios: {failing[:3]}"
