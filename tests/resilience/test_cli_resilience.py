"""CLI surface of the resilience lab: ``repro campaign`` / ``repro shrink``."""

import json

from repro.cli import main
from repro.resilience import Scenario


def violating_scenario_file(tmp_path):
    scenario = Scenario(
        protocol="real-aa", n=7, t=2, epsilon=0.5,
        inputs=(0.0, 5.0, 10.0, 5.0, 0.0, 5.0, 10.0),
        adversary="silent", corrupt=(1, 3, 5),
    )
    path = tmp_path / "violating.json"
    path.write_text(json.dumps(scenario.to_dict()))
    return path


class TestCampaignCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        code = main(
            ["campaign", "--count", "8", "--seed", "3", "--no-cache"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8 scenarios, 0 violating" in out

    def test_degradation_campaign_exits_one_and_tables_violations(
        self, capsys, tmp_path
    ):
        code = main(
            [
                "campaign", "--count", "8", "--seed", "5", "--no-cache",
                "--corruption-ratio", "0.45", "--protocols", "real-aa",
                "--adversaries", "silent",
                "--save-violations", str(tmp_path / "viols"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "violating" in out
        saved = sorted((tmp_path / "viols").glob("violation-*.json"))
        assert saved
        # each saved file is a replayable scenario
        Scenario.from_dict(json.loads(saved[0].read_text()))

    def test_campaign_jsonl_report(self, capsys, tmp_path):
        path = tmp_path / "report.jsonl"
        code = main(
            [
                "campaign", "--count", "4", "--seed", "2", "--no-cache",
                "--jsonl", str(path),
            ]
        )
        assert code == 0
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert sum(1 for rec in lines if rec["type"] == "point") == 4

    def test_fault_probability_requires_the_gate(self, capsys):
        code = main(
            ["campaign", "--count", "2", "--fault-probability", "0.2"]
        )
        assert code == 2
        assert "allow_model_violations" in capsys.readouterr().err


class TestShrinkCommand:
    def test_shrink_prints_report_and_minimal_json(self, capsys, tmp_path):
        path = violating_scenario_file(tmp_path)
        code = main(["shrink", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "reductions" in out
        # the minimal scenario is printed as replayable JSON
        payload = json.loads(out[out.index("{"):])
        minimal = Scenario.from_dict(payload)
        assert minimal.cost() < Scenario.from_dict(
            json.loads(path.read_text())
        ).cost()

    def test_shrink_saves_a_corpus_case(self, capsys, tmp_path):
        path = violating_scenario_file(tmp_path)
        out_path = tmp_path / "minimal-silent.json"
        code = main(
            [
                "shrink", str(path), "--out", str(out_path),
                "--description", "cli round trip",
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["name"] == "minimal-silent"
        assert payload["expected_violations"] == ["agreement"]
        assert payload["description"] == "cli round trip"

    def test_shrink_accepts_corpus_case_files(self, capsys, tmp_path):
        # A saved corpus case (scenario nested under "scenario") shrinks too.
        path = violating_scenario_file(tmp_path)
        out_path = tmp_path / "case.json"
        assert main(["shrink", str(path), "--out", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["shrink", str(out_path)]) == 0
        assert "reductions" in capsys.readouterr().out

    def test_shrink_rejects_clean_scenarios(self, capsys, tmp_path):
        clean = Scenario(
            protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
        )
        path = tmp_path / "clean.json"
        path.write_text(json.dumps(clean.to_dict()))
        code = main(["shrink", str(path)])
        assert code == 2
        assert "violates no oracle" in capsys.readouterr().err
