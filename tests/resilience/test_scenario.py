"""Scenario data model: validation, serialisation, execution."""

import math

import pytest

from repro.adversary import ChaosAdversary, CrashAdversary, SilentAdversary
from repro.asynchrony import DelaySendersScheduler, RandomScheduler, SplitScheduler
from repro.resilience import (
    Scenario,
    ScenarioError,
    build_adversary,
    build_scheduler,
    execute_scenario,
)


def real_scenario(**overrides):
    base = dict(
        protocol="real-aa",
        n=4,
        t=1,
        inputs=(0.0, 1.0, 2.0, 3.0),
    )
    base.update(overrides)
    return Scenario(**base)


class TestValidation:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ScenarioError, match="protocol"):
            real_scenario(protocol="quantum-aa")

    def test_input_count_must_match_n(self):
        with pytest.raises(ScenarioError, match="inputs"):
            real_scenario(inputs=(0.0, 1.0))

    def test_corrupt_ids_must_be_in_range(self):
        with pytest.raises(ScenarioError, match="out of range"):
            real_scenario(corrupt=(7,))

    def test_duplicate_corrupt_ids_rejected(self):
        with pytest.raises(ScenarioError, match="duplicate"):
            real_scenario(corrupt=(1, 1))

    def test_tree_aa_needs_a_tree(self):
        with pytest.raises(ScenarioError, match="tree spec"):
            real_scenario(protocol="tree-aa", inputs=(0, 1, 2, 3))

    def test_chaos_not_available_async(self):
        with pytest.raises(ScenarioError, match="not available"):
            real_scenario(protocol="async-real-aa", adversary="chaos:3")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ScenarioError, match="scheduler"):
            real_scenario(protocol="async-real-aa", scheduler="psychic")

    def test_scenario_error_is_value_error(self):
        # The CLI and campaign engine catch ValueError for bad data.
        assert issubclass(ScenarioError, ValueError)


class TestSerialisation:
    def test_minimal_round_trip(self):
        scenario = real_scenario(adversary="silent", corrupt=(2,))
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_full_round_trip(self):
        scenario = Scenario(
            protocol="tree-aa",
            n=5,
            t=1,
            inputs=(0, 3, 1, 4, 2),
            adversary="chaos:9",
            corrupt=(0,),
            tree="caterpillar:4x2",
            epsilon=0.25,
            known_range=12.0,
            fault_plan={
                "drop": 0.1,
                "seed": 3,
                "allow_model_violations": True,
            },
            chaos_script=((0, 0, "junk"), (1, 0, "stale")),
            max_steps=500,
            seed=77,
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt == scenario

    def test_round_trip_survives_json(self):
        import json

        scenario = real_scenario(
            protocol="async-real-aa", scheduler="split:2", adversary="noise:4",
            corrupt=(1,),
        )
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(payload) == scenario


class TestDerivedQuantities:
    def test_network_budget_covers_actual_corruption(self):
        scenario = real_scenario(n=7, t=2, corrupt=(0, 2, 4),
                                 inputs=(0.0,) * 7, adversary="silent")
        assert scenario.network_budget == 3
        assert scenario.assumed_t == 2

    def test_effective_known_range_derives_from_inputs(self):
        assert real_scenario().effective_known_range == 3.0
        assert real_scenario(known_range=10.0).effective_known_range == 10.0

    def test_cost_decreases_with_every_shrink_dimension(self):
        big = Scenario(
            protocol="tree-aa", n=6, t=1, inputs=(0, 1, 2, 3, 4, 5),
            adversary="chaos:1", corrupt=(0, 1), tree="path:12",
            chaos_script=((0, 0, "junk"), (1, 1, "stale")),
        )
        import dataclasses

        fewer_corrupt = dataclasses.replace(big, corrupt=(0,))
        fewer_parties = dataclasses.replace(
            big, n=5, inputs=big.inputs[:5], corrupt=(0, 1)
        )
        smaller_tree = dataclasses.replace(big, tree="path:6")
        shorter_script = dataclasses.replace(
            big, chaos_script=big.chaos_script[:1]
        )
        for smaller in (fewer_corrupt, fewer_parties, smaller_tree, shorter_script):
            assert smaller.cost() < big.cost()


class TestBuilders:
    def test_sync_adversary_specs(self):
        crash = build_adversary(
            real_scenario(adversary="crash:2:3", corrupt=(1,))
        )
        assert isinstance(crash, CrashAdversary)
        silent = build_adversary(real_scenario(adversary="silent", corrupt=(1,)))
        assert isinstance(silent, SilentAdversary)
        assert build_adversary(real_scenario()) is None

    def test_chaos_script_reaches_the_adversary(self):
        scenario = real_scenario(
            adversary="chaos:5", corrupt=(1,),
            chaos_script=((0, 1, "junk"),),
        )
        chaos = build_adversary(scenario)
        assert isinstance(chaos, ChaosAdversary)

    def test_scheduler_specs(self):
        async_base = dict(protocol="async-real-aa")
        assert build_scheduler(real_scenario(**async_base)) is None
        assert isinstance(
            build_scheduler(real_scenario(scheduler="random:3", **async_base)),
            RandomScheduler,
        )
        assert isinstance(
            build_scheduler(real_scenario(scheduler="split:2", **async_base)),
            SplitScheduler,
        )
        assert isinstance(
            build_scheduler(real_scenario(scheduler="delay:1", **async_base)),
            DelaySendersScheduler,
        )


class TestExecution:
    def test_clean_real_aa_run(self):
        result = execute_scenario(real_scenario(adversary="silent", corrupt=(3,)))
        assert result.error is None
        assert result.completed
        assert sorted(result.honest_outputs) == [0, 1, 2]
        spread = max(result.honest_outputs.values()) - min(
            result.honest_outputs.values()
        )
        assert spread <= 0.5
        assert result.rounds <= (result.round_limit or math.inf)

    def test_clean_tree_aa_run_remaps_vertex_indices(self):
        scenario = Scenario(
            protocol="tree-aa", n=4, t=1, inputs=(0, 99, 2, 3),
            adversary="silent", corrupt=(1,), tree="path:5",
        )
        result = execute_scenario(scenario)
        assert result.error is None
        assert result.tree_obj is not None
        # index 99 wrapped modulo the 5 vertices; outputs are vertices
        for value in result.honest_outputs.values():
            assert value in result.tree_obj

    def test_clean_async_run(self):
        scenario = real_scenario(
            protocol="async-real-aa", adversary="silent", corrupt=(0,),
            scheduler="random:11",
        )
        result = execute_scenario(scenario)
        assert result.error is None
        assert result.completed
        assert result.stall is None
        assert result.rounds <= scenario.max_steps

    def test_unhandled_exception_is_captured_not_raised(self):
        # A non-numeric input crashes float() deep inside the runner; the
        # interpreter must turn that into result.error, never a raise.
        scenario = Scenario(
            protocol="real-aa", n=2, t=0, inputs=("bogus", 1.0)
        )
        result = execute_scenario(scenario)
        assert result.error is not None
        assert "ValueError" in result.error
        assert not result.completed

    def test_malformed_scenario_still_raises(self):
        with pytest.raises(ScenarioError):
            Scenario(protocol="real-aa", n=2, t=0, inputs=(1.0,))

    def test_fault_counters_zero_without_plan(self):
        result = execute_scenario(real_scenario())
        assert result.fault_counts == {
            "dropped": 0, "duplicated": 0, "corrupted": 0,
        }

    def test_fault_plan_counters_show_up(self):
        scenario = real_scenario(
            fault_plan={
                "drop": 0.4, "seed": 5, "allow_model_violations": True,
            },
        )
        result = execute_scenario(scenario)
        assert result.error is None
        assert result.fault_counts["dropped"] > 0

    def test_chaos_log_is_captured(self):
        scenario = real_scenario(adversary="chaos:3", corrupt=(2,))
        result = execute_scenario(scenario)
        assert result.chaos_log
        assert all(pid == 2 for _, pid, _ in result.chaos_log)
