"""Regression corpus: format round-trips and the tier-1 replay gate.

Every JSON case under ``tests/corpus/`` replays through the scenario
interpreter and must reproduce its recorded oracle verdict *exactly* —
violating cases must keep violating the same way (the shrunken
reproductions stay alive), clean cases must stay clean (the guards keep
holding).  A failure here means some layer the scenario touches changed
behaviour; regenerate or fix, but never delete silently.
"""

import json
import os

import pytest

from repro.resilience import (
    CORPUS_SCHEMA_VERSION,
    ReproCase,
    Scenario,
    case_from_scenario,
    iter_corpus,
    load_case,
    replay,
    save_case,
    verify,
    verify_corpus,
)

CORPUS_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "corpus")

CORPUS_CASES = iter_corpus(CORPUS_DIR)


class TestCaseFormat:
    def test_round_trip(self, tmp_path):
        case = ReproCase(
            name="round-trip",
            description="format check",
            scenario=Scenario(
                protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
                adversary="silent", corrupt=(2,),
            ),
            expected_violations=(),
        )
        path = save_case(case, str(tmp_path))
        assert load_case(path) == case
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema_version"] == CORPUS_SCHEMA_VERSION

    def test_case_from_scenario_freezes_current_verdict(self):
        clean = Scenario(
            protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
        )
        case = case_from_scenario("clean", "freeze check", clean)
        assert case.expected_violations == ()
        assert verify(case)

    def test_verify_detects_a_wrong_expectation(self):
        clean = Scenario(
            protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
        )
        wrong = ReproCase(
            name="wrong", description="", scenario=clean,
            expected_violations=("agreement",),
        )
        assert not verify(wrong)

    def test_verify_corpus_lists_failures(self, tmp_path):
        clean = Scenario(
            protocol="real-aa", n=4, t=1, inputs=(0.0, 1.0, 2.0, 3.0),
        )
        save_case(
            ReproCase("good", "", clean, ()), str(tmp_path)
        )
        save_case(
            ReproCase("bad", "", clean, ("validity",)), str(tmp_path)
        )
        assert verify_corpus(str(tmp_path)) == ["bad"]

    def test_missing_directory_is_an_empty_corpus(self, tmp_path):
        assert iter_corpus(str(tmp_path / "nope")) == []


class TestShippedCorpus:
    def test_corpus_is_not_empty(self):
        assert len(CORPUS_CASES) >= 5

    def test_corpus_has_both_violating_and_clean_cases(self):
        verdicts = {bool(case.expected_violations) for case in CORPUS_CASES}
        assert verdicts == {True, False}

    def test_names_match_filenames_and_are_unique(self):
        names = [case.name for case in CORPUS_CASES]
        assert len(set(names)) == len(names)
        on_disk = sorted(
            name[: -len(".json")]
            for name in os.listdir(CORPUS_DIR)
            if name.endswith(".json")
        )
        assert sorted(names) == on_disk

    def test_every_case_has_a_description(self):
        for case in CORPUS_CASES:
            assert case.description, case.name

    @pytest.mark.parametrize(
        "case", CORPUS_CASES, ids=[case.name for case in CORPUS_CASES]
    )
    def test_replay_reproduces_recorded_verdict(self, case):
        found, result = replay(case)
        assert tuple(sorted(found)) == tuple(sorted(case.expected_violations)), (
            f"corpus case {case.name!r} no longer reproduces: expected "
            f"{case.expected_violations}, replayed {found} "
            f"(error={result.error!r})"
        )
