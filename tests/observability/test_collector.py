"""MetricsCollector: per-round metrics vs the simulator's own accounting."""

import pytest

from repro.adversary import SilentAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import run_real_aa, run_tree_aa
from repro.net import TraceLevel
from repro.observability import MetricsCollector
from repro.trees import figure_tree, steiner_diameter

N, T = 7, 2
INPUTS = ["v3", "v6", "v5", "v6", "v3", "v8", "v8"]


def figure_run(collector, adversary=None):
    return run_tree_aa(
        figure_tree(),
        INPUTS,
        t=T,
        adversary=adversary or BurnScheduleAdversary([1, 1]),
        observer=collector,
    )


class TestTotalsMatchExecutionTrace:
    """The collector's aggregates must agree exactly with the simulator's
    ExecutionTrace counts — they are two measurements of the same run."""

    def test_message_totals(self):
        collector = MetricsCollector(tree=figure_tree())
        outcome = figure_run(collector)
        trace = outcome.execution.trace
        assert collector.rounds_observed == trace.rounds_executed
        assert collector.honest_message_total == trace.honest_message_count
        assert collector.byzantine_message_total == trace.byzantine_message_count
        assert collector.message_total == trace.message_count
        assert [r.message_count for r in collector.rounds] == (
            trace.per_round_messages
        )

    def test_payload_totals(self):
        collector = MetricsCollector(tree=figure_tree())
        outcome = figure_run(collector)
        assert (
            collector.payload_unit_total
            == outcome.execution.trace.payload_unit_count
        )

    def test_round_indices_are_contiguous(self):
        collector = MetricsCollector(tree=figure_tree())
        figure_run(collector)
        assert [r.round_index for r in collector.rounds] == list(
            range(collector.rounds_observed)
        )

    def test_silent_adversary_sends_nothing(self):
        collector = MetricsCollector(tree=figure_tree())
        figure_run(collector, adversary=SilentAdversary())
        assert collector.byzantine_message_total == 0
        assert all(r.byzantine_payload_units == 0 for r in collector.rounds)


class TestHullDiameter:
    def test_initial_hull_is_the_honest_input_hull(self):
        tree = figure_tree()
        collector = MetricsCollector(tree=tree)
        figure_run(collector)
        honest_inputs = INPUTS[: N - T]
        assert collector.rounds[0].hull_diameter == steiner_diameter(
            tree, honest_inputs
        )

    def test_final_hull_collapses_on_agreement(self):
        collector = MetricsCollector(tree=figure_tree())
        outcome = figure_run(collector)
        assert outcome.achieved_aa
        # all honest outputs are identical on this instance -> diameter 0
        assert collector.final_hull_diameter == 0

    def test_no_tree_means_no_hull(self):
        collector = MetricsCollector()
        figure_run(collector)
        assert all(r.hull_diameter is None for r in collector.rounds)
        assert collector.final_hull_diameter is None

    def test_custom_estimate_fn(self):
        tree = figure_tree()
        collector = MetricsCollector(tree=tree, estimate_fn=lambda party: "v1")
        figure_run(collector)
        assert all(r.hull_diameter == 0 for r in collector.rounds)


class TestRealAARuns:
    def test_value_spread_shrinks_to_epsilon(self):
        collector = MetricsCollector()
        outcome = run_real_aa(
            [0.0, 8.0, 4.0, 2.0, 6.0, 0.0, 0.0],
            t=T,
            epsilon=0.5,
            adversary=BurnScheduleAdversary([1, 1]),
            observer=collector,
        )
        assert outcome.achieved_aa
        spreads = [r.value_spread for r in collector.rounds]
        assert all(s is not None for s in spreads)
        assert spreads[0] == 8.0
        assert spreads[-1] <= 0.5
        # the honest envelope never widens (Lemma-1-style monotonicity)
        assert all(a >= b for a, b in zip(spreads, spreads[1:]))

    def test_tree_runs_have_no_value_spread(self):
        collector = MetricsCollector(tree=figure_tree())
        figure_run(collector)
        # TreeAA parties carry vertex state, not a bare real `.value`
        assert collector.rounds[0].value_spread is None


class TestDetachedFastPath:
    """With no collector attached, the AGGREGATE fast path must produce the
    exact same outcome — attaching one only adds observation."""

    def test_outcome_identical_with_and_without_collector(self):
        plain = run_tree_aa(
            figure_tree(),
            INPUTS,
            t=T,
            adversary=BurnScheduleAdversary([1, 1]),
            trace_level=TraceLevel.AGGREGATE,
        )
        collector = MetricsCollector(tree=figure_tree())
        observed = figure_run(collector)
        assert plain.honest_outputs == observed.honest_outputs
        assert plain.rounds == observed.rounds
        assert (
            plain.execution.trace.honest_message_count
            == observed.execution.trace.honest_message_count
        )


class TestInjectableClock:
    def test_wall_seconds_uses_injected_clock(self):
        ticks = iter(range(100))
        collector = MetricsCollector(
            tree=figure_tree(), clock=lambda: float(next(ticks))
        )
        figure_run(collector)
        assert all(r.wall_seconds == pytest.approx(1.0) for r in collector.rounds)


class TestSummary:
    def test_summary_is_consistent_and_serialisable(self):
        import json

        collector = MetricsCollector(tree=figure_tree())
        figure_run(collector)
        summary = collector.summary()
        assert summary["rounds"] == collector.rounds_observed
        assert summary["messages"] == (
            summary["honest_messages"] + summary["byzantine_messages"]
        )
        assert len(summary["per_round_messages"]) == summary["rounds"]
        assert summary["final_hull_diameter"] == 0
        json.dumps(summary)  # must be JSON-serialisable for sweep rows
