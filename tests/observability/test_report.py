"""Offline reports over recorded traces — including the walkthrough numbers."""

import io

from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import run_tree_aa
from repro.observability import (
    MetricsCollector,
    export_run,
    load_run,
    render_report,
    summarize_run,
)
from repro.trees import figure_tree

#: The exact instance docs/PROTOCOL_WALKTHROUGH.md narrates.
INPUTS = ["v3", "v6", "v5", "v6", "v3", "v8", "v8"]


def walkthrough_run():
    tree = figure_tree()
    collector = MetricsCollector(tree=tree)
    outcome = run_tree_aa(
        tree,
        INPUTS,
        t=2,
        adversary=BurnScheduleAdversary([1, 1]),
        observer=collector,
    )
    buffer = io.StringIO()
    export_run(
        buffer,
        collector,
        outcome.execution,
        protocol="tree-aa",
        inputs=INPUTS,
        t=2,
        verdicts={
            "terminated": outcome.terminated,
            "valid": outcome.valid,
            "agreement": outcome.agreement,
        },
    )
    buffer.seek(0)
    return outcome, load_run(buffer)


class TestWalkthroughNumbers:
    """The numbers quoted in docs/PROTOCOL_WALKTHROUGH.md must keep
    regenerating — this is the docs-consistency anchor for that page."""

    def test_rounds_and_outputs(self):
        outcome, run = walkthrough_run()
        assert run.rounds_executed == 18
        assert outcome.achieved_aa
        assert set(run.honest_outputs.values()) == {"v3"}

    def test_message_and_payload_totals(self):
        _, run = walkthrough_run()
        assert run.footer["honest_messages"] == 630
        assert run.footer["byzantine_messages"] == 248
        assert run.message_total == 878
        assert run.footer["payload_units"] == 10230
        assert run.footer["corrupted"] == [5, 6]

    def test_hull_diameter_series(self):
        _, run = walkthrough_run()
        series = run.round_series("hull_diameter")
        assert series == [3] * 17 + [0]
        assert run.final_hull_diameter == 0


class TestSummarize:
    def test_summary_fields(self):
        _, run = walkthrough_run()
        summary = summarize_run(run)
        assert summary["protocol"] == "tree-aa"
        assert summary["n"] == 7 and summary["t"] == 2
        assert summary["rounds"] == 18
        assert summary["messages"] == 878
        assert summary["final_hull_diameter"] == 0
        assert summary["verdicts"]["agreement"] is True


class TestRender:
    def test_full_report_contents(self):
        _, run = walkthrough_run()
        text = render_report(run)
        assert "recorded run" in text
        assert "per-round metrics" in text
        assert "tree-aa" in text
        assert "878" in text
        # all 18 rounds tabled, nothing truncated
        assert "more rounds" not in text

    def test_max_rounds_truncates_table_not_totals(self):
        _, run = walkthrough_run()
        text = render_report(run, max_rounds=3)
        assert "... 15 more rounds" in text
        assert "878" in text  # totals still cover the whole run

    def test_max_rounds_zero_suppresses_table(self):
        _, run = walkthrough_run()
        text = render_report(run, max_rounds=0)
        assert "per-round metrics" not in text
        assert "recorded run" in text
