"""The JSONL trace format: export/load round trip, validation, diffing."""

import io
import json

import pytest

from repro.adversary import SilentAdversary
from repro.adversary.realaa_attacks import BurnScheduleAdversary
from repro.core import run_tree_aa
from repro.observability import (
    SCHEMA_VERSION,
    MetricsCollector,
    SchemaVersionError,
    TraceFormatError,
    diff_runs,
    export_run,
    load_run,
)
from repro.trees import figure_tree

INPUTS = ["v3", "v6", "v5", "v6", "v3", "v8", "v8"]


def record_figure_run(adversary=None, **export_kwargs):
    tree = figure_tree()
    collector = MetricsCollector(tree=tree)
    outcome = run_tree_aa(
        tree,
        INPUTS,
        t=2,
        adversary=adversary or BurnScheduleAdversary([1, 1]),
        observer=collector,
    )
    buffer = io.StringIO()
    export_kwargs.setdefault("protocol", "tree-aa")
    export_kwargs.setdefault("inputs", INPUTS)
    export_kwargs.setdefault("t", 2)
    export_run(buffer, collector, outcome.execution, **export_kwargs)
    return outcome, collector, buffer.getvalue()


class TestRoundTrip:
    def test_load_recovers_everything_exported(self):
        outcome, collector, text = record_figure_run(
            params={"adversary": "burn"},
            verdicts={"agreement": True},
        )
        run = load_run(io.StringIO(text))
        assert run.protocol == "tree-aa"
        assert run.header["schema_version"] == SCHEMA_VERSION
        assert run.header["n"] == 7
        assert run.header["t"] == 2
        assert run.header["params"] == {"adversary": "burn"}
        assert run.header["inputs"] == INPUTS
        assert run.rounds_executed == collector.rounds_observed
        assert run.message_total == collector.message_total
        assert run.final_hull_diameter == 0
        assert run.honest_outputs == outcome.honest_outputs
        assert run.footer["verdicts"] == {"agreement": True}

    def test_tree_round_trips_canonically(self):
        _, _, text = record_figure_run()
        run = load_run(io.StringIO(text))
        assert run.tree() == figure_tree()

    def test_path_destination_and_source(self, tmp_path):
        tree = figure_tree()
        collector = MetricsCollector(tree=tree)
        outcome = run_tree_aa(
            tree, INPUTS, t=2,
            adversary=BurnScheduleAdversary([1, 1]),
            observer=collector,
        )
        path = tmp_path / "run.jsonl"
        count = export_run(
            str(path), collector, outcome.execution, protocol="tree-aa"
        )
        assert count == collector.rounds_observed + 2  # header + footer
        assert len(path.read_text().splitlines()) == count
        assert load_run(str(path)).rounds_executed == collector.rounds_observed

    def test_round_series(self):
        _, collector, text = record_figure_run()
        run = load_run(io.StringIO(text))
        assert run.round_series("honest_messages") == [
            r.honest_messages for r in collector.rounds
        ]

    def test_every_line_is_sorted_key_json(self):
        _, _, text = record_figure_run()
        for line in text.splitlines():
            record = json.loads(line)
            assert list(record) == sorted(record)


class TestValidation:
    def make_text(self):
        return record_figure_run()[2]

    def test_schema_version_rejected(self):
        lines = self.make_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = SCHEMA_VERSION + 1
        doctored = "\n".join([json.dumps(header)] + lines[1:])
        with pytest.raises(SchemaVersionError) as info:
            load_run(io.StringIO(doctored))
        assert info.value.found == SCHEMA_VERSION + 1

    def test_schema_version_error_is_a_format_error(self):
        assert issubclass(SchemaVersionError, TraceFormatError)

    def test_empty_file_rejected(self):
        with pytest.raises(TraceFormatError, match="empty"):
            load_run(io.StringIO(""))

    def test_invalid_json_rejected(self):
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            load_run(io.StringIO("{not json\n"))

    def test_missing_header_rejected(self):
        lines = self.make_text().splitlines()
        with pytest.raises(TraceFormatError, match="run_header"):
            load_run(io.StringIO("\n".join(lines[1:])))

    def test_missing_footer_rejected(self):
        lines = self.make_text().splitlines()
        with pytest.raises(TraceFormatError, match="run_footer"):
            load_run(io.StringIO("\n".join(lines[:-1])))

    def test_out_of_order_rounds_rejected(self):
        lines = self.make_text().splitlines()
        lines[1], lines[2] = lines[2], lines[1]
        with pytest.raises(TraceFormatError, match="out of order"):
            load_run(io.StringIO("\n".join(lines)))

    def test_dropped_round_rejected(self):
        lines = self.make_text().splitlines()
        del lines[3]
        with pytest.raises(TraceFormatError):
            load_run(io.StringIO("\n".join(lines)))

    def test_untyped_record_rejected(self):
        with pytest.raises(TraceFormatError, match="typed"):
            load_run(io.StringIO('{"no_type": 1}\n'))

    def test_round_record_missing_metric_field_rejected(self):
        # A hand-edited round record without its metric columns must fail
        # at load time, not as a KeyError inside the report renderer.
        lines = self.make_text().splitlines()
        record = json.loads(lines[1])
        del record["honest_messages"]
        lines[1] = json.dumps(record)
        with pytest.raises(TraceFormatError, match="honest_messages"):
            load_run(io.StringIO("\n".join(lines)))

    def test_footer_missing_totals_rejected(self):
        lines = self.make_text().splitlines()
        footer = json.loads(lines[-1])
        del footer["messages"]
        lines[-1] = json.dumps(footer)
        with pytest.raises(TraceFormatError, match="messages"):
            load_run(io.StringIO("\n".join(lines)))

    def test_footer_malformed_outputs_rejected(self):
        lines = self.make_text().splitlines()
        footer = json.loads(lines[-1])
        footer["honest_outputs"] = [[0, "v1", "extra"]]
        lines[-1] = json.dumps(footer)
        with pytest.raises(TraceFormatError, match="honest_outputs"):
            load_run(io.StringIO("\n".join(lines)))

    def test_header_only_file_rejected(self):
        # The truncation shape a crashed recorder leaves behind.
        lines = self.make_text().splitlines()
        with pytest.raises(TraceFormatError, match="run_footer"):
            load_run(io.StringIO(lines[0] + "\n"))


class TestDiff:
    def test_identical_runs_diff_empty(self):
        _, _, first = record_figure_run()
        _, _, second = record_figure_run()
        differences = diff_runs(
            load_run(io.StringIO(first)), load_run(io.StringIO(second))
        )
        # wall_seconds differs between the two recordings but is ignored
        assert differences == []

    def test_different_adversary_is_visible(self):
        _, _, burn = record_figure_run()
        _, _, silent = record_figure_run(adversary=SilentAdversary())
        differences = diff_runs(
            load_run(io.StringIO(burn)), load_run(io.StringIO(silent))
        )
        assert differences
        assert any("byzantine_messages" in d for d in differences)

    def test_round_count_mismatch_reported(self):
        _, _, text = record_figure_run()
        lines = text.splitlines()
        truncated = load_run(io.StringIO(text))
        truncated.rounds = truncated.rounds[:-1]
        full = load_run(io.StringIO("\n".join(lines)))
        differences = diff_runs(full, truncated)
        assert any(d.startswith("rounds:") for d in differences)
